package core

import "time"

// Partial membership (Section 2.2.1). Each node maintains a bounded,
// approximately uniform random subset of the system, refreshed by entries
// piggybacked on gossips (lpbcast-style). The paper cites [5]: a uniformly
// random partial member list is almost as good as a complete one.

// obitRecord quarantines one dead or departed incarnation of a node:
// entries with Inc at or below the record's are not re-learned until the
// quarantine window passes (or a higher incarnation supersedes it).
type obitRecord struct {
	Inc   uint32
	Until time.Duration
	// Spread marks departure obituaries (authoritative: the node announced
	// its own leave), which piggyback on outgoing gossips. Obits from mere
	// failure suspicion stay local so a false positive cannot cascade.
	Spread bool
}

// learnEntry merges one membership entry into the view. The highest
// incarnation always wins: stale incarnations are rejected, higher ones
// supersede the old life (dropping any link held under it). Entries with a
// landmark vector replace vector-less ones for the same node and
// incarnation; when the view is full a random existing entry is evicted so
// the view stays an unbiased sample.
func (n *Node) learnEntry(e Entry) {
	if e.ID == n.id || e.ID == None {
		return
	}
	if n.obitBlocks(e) {
		n.stats.ObitsHonored++
		return
	}
	old, known := n.members.get(e.ID)
	if known && e.Inc < old.Inc {
		n.stats.StaleIncRejects++
		return
	}
	if nb := n.neighbors[e.ID]; nb != nil && e.Inc < nb.entry.Inc {
		n.stats.StaleIncRejects++
		return
	}
	n.env.Learn(e)
	n.noteRejoin(e)
	if known {
		if e.Inc > old.Inc || len(e.Landmarks) > 0 || len(old.Landmarks) == 0 {
			// Steady-state gossip re-delivers the same entry constantly
			// (senders hand out one cached landmark slice, so identity
			// comparison of the slice headers catches the common case);
			// skip the table write when the stored value would not change.
			if e.Inc != old.Inc || e.Addr != old.Addr ||
				len(e.Landmarks) != len(old.Landmarks) ||
				(len(e.Landmarks) > 0 && &e.Landmarks[0] != &old.Landmarks[0]) {
				n.members.set(e)
			}
		}
		return
	}
	if n.members.len() >= n.cfg.MemberViewSize {
		// Evict a random entry that is not a current neighbor.
		victim := n.randomMember(func(id NodeID) bool { return n.neighbors[id] == nil })
		if victim == None {
			return
		}
		n.forgetMember(victim)
	}
	n.members.set(e)
}

// obitBlocks reports whether an active obituary quarantines this entry. A
// strictly higher incarnation supersedes (clears) the obituary: a
// legitimate rejoin must not be blocked. Expired records linger as
// tombstones (see recordObit) and block nothing.
func (n *Node) obitBlocks(e Entry) bool {
	ob, ok := n.obits[e.ID]
	if !ok {
		return false
	}
	if e.Inc > ob.Inc {
		// A higher incarnation supersedes the obituary: the node is back.
		delete(n.obits, e.ID)
		n.stats.RejoinsObserved++
		return false
	}
	return n.env.Now() < ob.Until
}

// noteRejoin reacts to evidence that a known peer restarted under a higher
// incarnation: any link still held under the dead incarnation is torn down
// and cached measurements of the old life are discarded.
func (n *Node) noteRejoin(e Entry) {
	nb := n.neighbors[e.ID]
	old, known := n.members.get(e.ID)
	rejoined := (known && e.Inc > old.Inc) || (nb != nil && e.Inc > nb.entry.Inc)
	if !rejoined {
		return
	}
	n.stats.RejoinsObserved++
	delete(n.rtt, e.ID)
	delete(n.lastPong, e.ID)
	if nb != nil && e.Inc > nb.entry.Inc {
		n.stats.StaleLinksDropped++
		n.removeNeighbor(e.ID, false)
	}
	n.abortOpsWith(e.ID)
}

// recordObit quarantines a dead incarnation of a peer: the member entry is
// dropped, any link held under that incarnation (or older) is torn down,
// and re-learning is blocked for QuarantineWindow. spread marks departure
// obituaries, which piggyback on outgoing gossips. Each (id, incarnation)
// arms the window at most once; afterwards the record lingers as an
// expired tombstone so a still-circulating copy of the obituary cannot
// re-arm it — without this, nodes would refresh each other's windows
// epidemically and the obituary would never die out.
func (n *Node) recordObit(id NodeID, inc uint32, spread bool) {
	if id == n.id || id == None {
		return
	}
	if cur, ok := n.members.get(id); ok && cur.Inc > inc {
		return // a newer life is already known; the obituary is stale
	}
	if ob, ok := n.obits[id]; ok {
		if ob.Inc > inc {
			return
		}
		if ob.Inc == inc {
			if spread && !ob.Spread && n.env.Now() < ob.Until {
				ob.Spread = true
				n.obits[id] = ob
			}
			return
		}
	}
	n.obits[id] = obitRecord{Inc: inc, Until: n.env.Now() + n.cfg.QuarantineWindow, Spread: spread}
	n.stats.ObitsRecorded++
	n.forgetMember(id)
	if nb := n.neighbors[id]; nb != nil && nb.entry.Inc <= inc {
		n.removeNeighbor(id, false)
	}
	n.abortOpsWith(id)
}

// knownInc returns the highest incarnation this node has recorded for id.
func (n *Node) knownInc(id NodeID) uint32 {
	var inc uint32
	if nb := n.neighbors[id]; nb != nil {
		inc = nb.entry.Inc
	}
	if e, ok := n.members.get(id); ok && e.Inc > inc {
		inc = e.Inc
	}
	return inc
}

// staleSender reports (and counts) a message carrying the sender entry of a
// dead or superseded incarnation; such messages were sent by a peer's past
// life and must not be acted on.
func (n *Node) staleSender(e Entry) bool {
	if e.ID == n.id || e.ID == None {
		return false
	}
	if ob, ok := n.obits[e.ID]; ok && e.Inc <= ob.Inc && n.env.Now() < ob.Until {
		n.stats.StaleIncRejects++
		return true
	}
	if e.Inc < n.knownInc(e.ID) {
		n.stats.StaleIncRejects++
		return true
	}
	return false
}

// activeObits returns the unexpired spreading obituaries (departures) in
// deterministic order for gossip piggybacking. Expired records are kept as
// tombstones for a few windows (so circulating copies cannot re-arm them)
// and purged only after that retention passes.
func (n *Node) activeObits() []Obituary {
	if len(n.obits) == 0 {
		return nil
	}
	return n.appendActiveObits(make([]Obituary, 0, len(n.obits)))
}

// appendActiveObits is activeObits appending into caller-owned storage,
// reusing the node's scratch ID buffer so the gossip hot path allocates
// nothing once the scratch has grown.
func (n *Node) appendActiveObits(out []Obituary) []Obituary {
	if len(n.obits) == 0 {
		return out
	}
	now := n.env.Now()
	ids := n.obitScratch[:0]
	for id, ob := range n.obits {
		if now >= ob.Until {
			if now >= ob.Until+4*n.cfg.QuarantineWindow {
				delete(n.obits, id)
			}
			continue
		}
		if ob.Spread {
			ids = append(ids, id)
		}
	}
	sortNodeIDs(ids)
	for _, id := range ids {
		out = append(out, Obituary{ID: id, Inc: n.obits[id].Inc})
	}
	n.obitScratch = ids[:0]
	return out
}

// Obituaries returns the node's active quarantine records (spreading and
// local), for introspection and tests.
func (n *Node) Obituaries() []Obituary {
	now := n.env.Now()
	var ids []NodeID
	for id, ob := range n.obits {
		if now < ob.Until {
			ids = append(ids, id)
		}
	}
	sortNodeIDs(ids)
	out := make([]Obituary, 0, len(ids))
	for _, id := range ids {
		out = append(out, Obituary{ID: id, Inc: n.obits[id].Inc})
	}
	return out
}

// forgetMember removes a node from the view (e.g. it was found dead).
func (n *Node) forgetMember(id NodeID) {
	i := n.members.remove(id)
	if i < 0 {
		return
	}
	delete(n.lastPong, id)
	// The swap-remove moved the former tail into slot i; keep the
	// round-robin cursor in range (exact fairness across a removal is not
	// required, staying deterministic is).
	if n.scanIdx > i {
		n.scanIdx--
	}
}

// SeedMembers installs bootstrap entries into the partial view, e.g. a
// deployment-provided seed list or a simulation's initial membership.
func (n *Node) SeedMembers(entries []Entry) {
	for _, e := range entries {
		n.learnEntry(e)
	}
}

// MemberCount returns the current partial-view size.
func (n *Node) MemberCount() int { return n.members.len() }

// Members returns a copy of the current partial view.
func (n *Node) Members() []Entry {
	return append([]Entry(nil), n.members.entries...)
}

// sampleMembers returns up to k random entries, excluding `exclude`
// (and implicitly the node itself, which is never in the view). The
// sender's own entry is appended so receivers learn fresh contact info.
func (n *Node) sampleMembers(k int, exclude NodeID) []Entry {
	if k <= 0 {
		return nil
	}
	return n.appendSampleMembers(make([]Entry, 0, k+1), k, exclude)
}

// appendSampleMembers is sampleMembers appending into caller-owned
// storage (the pooled Gossip's Members buffer on the hot path). It draws
// exactly the same RNG sequence as sampleMembers: one Rand call iff the
// view is non-empty and k > 0.
func (n *Node) appendSampleMembers(out []Entry, k int, exclude NodeID) []Entry {
	if k <= 0 {
		return out
	}
	if m := n.members.len(); m > 0 {
		base := len(out)
		start := n.env.Rand(m)
		for i := 0; i < m && len(out)-base < k; i++ {
			e := n.members.at((start + i) % m)
			if e.ID == exclude {
				continue
			}
			out = append(out, e)
		}
	}
	return append(out, n.selfEntry())
}

// selfEntry returns this node's own membership entry including its
// current landmark vector. The vector copy is cached until landVec
// changes; on change a fresh slice is allocated rather than rewriting the
// cached one, because receivers keep the returned slice in their views.
func (n *Node) selfEntry() Entry {
	e := n.self
	if len(n.landVec) > 0 {
		if !n.selfLmOK {
			n.selfLm = append([]uint16(nil), n.landVec...)
			n.selfLmOK = true
		}
		e.Landmarks = n.selfLm
	}
	return e
}

// randomMember picks a uniformly random member satisfying ok (nil = any),
// or None if none qualifies.
func (n *Node) randomMember(ok func(NodeID) bool) NodeID {
	m := n.members.len()
	if m == 0 {
		return None
	}
	start := n.env.Rand(m)
	for i := 0; i < m; i++ {
		id := n.members.at((start + i) % m).ID
		if ok == nil || ok(id) {
			return id
		}
	}
	return None
}

// nextCandidate returns the next neighbor candidate to consider. While the
// estimated-latency first pass (built lazily once landmark vectors exist)
// has entries, candidates come from it in increasing estimated latency;
// afterwards candidates come from the member list in round-robin order
// (Section 2.2.3).
func (n *Node) nextCandidate(skip func(NodeID) bool) (Entry, bool) {
	if n.estimated == nil && n.landmarksReady() {
		n.buildEstimatePass()
	}
	for len(n.estimated) > 0 {
		id := n.estimated[0]
		n.estimated = n.estimated[1:]
		e, ok := n.members.get(id)
		if !ok || (skip != nil && skip(id)) {
			continue
		}
		return e, true
	}
	for i, m := 0, n.members.len(); i < m; i++ {
		n.scanIdx = (n.scanIdx + 1) % m
		e := n.members.at(n.scanIdx)
		if skip != nil && skip(e.ID) {
			continue
		}
		return e, true
	}
	return Entry{}, false
}

// buildEstimatePass sorts the current members by triangulated latency
// estimate for the initial measurement sweep.
func (n *Node) buildEstimatePass() {
	type cand struct {
		id  NodeID
		est int64
	}
	cands := make([]cand, 0, n.members.len())
	for _, e := range n.members.entries {
		cands = append(cands, cand{id: e.ID, est: int64(n.estimateRTT(e))})
	}
	// Insertion sort with ID tie-break: views are small and the order must
	// be deterministic.
	less := func(a, b cand) bool {
		if a.est != b.est {
			return a.est < b.est
		}
		return a.id < b.id
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	n.estimated = make([]NodeID, len(cands))
	for i, c := range cands {
		n.estimated[i] = c.id
	}
}
