package core

// Partial membership (Section 2.2.1). Each node maintains a bounded,
// approximately uniform random subset of the system, refreshed by entries
// piggybacked on gossips (lpbcast-style). The paper cites [5]: a uniformly
// random partial member list is almost as good as a complete one.

// learnEntry merges one membership entry into the view. Entries with a
// landmark vector replace vector-less ones for the same node; when the
// view is full a random existing entry is evicted so the view stays an
// unbiased sample.
func (n *Node) learnEntry(e Entry) {
	if e.ID == n.id || e.ID == None {
		return
	}
	n.env.Learn(e)
	if old, ok := n.members[e.ID]; ok {
		if len(e.Landmarks) > 0 || len(old.Landmarks) == 0 {
			n.members[e.ID] = e
		}
		return
	}
	if len(n.members) >= n.cfg.MemberViewSize {
		// Evict a random entry that is not a current neighbor.
		victim := n.randomMember(func(id NodeID) bool { return n.neighbors[id] == nil })
		if victim == None {
			return
		}
		n.forgetMember(victim)
	}
	n.members[e.ID] = e
	n.order = append(n.order, e.ID)
}

// forgetMember removes a node from the view (e.g. it was found dead).
func (n *Node) forgetMember(id NodeID) {
	if _, ok := n.members[id]; !ok {
		return
	}
	delete(n.members, id)
	delete(n.lastPong, id)
	for i, v := range n.order {
		if v == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			if n.scanIdx > i {
				n.scanIdx--
			}
			break
		}
	}
}

// SeedMembers installs bootstrap entries into the partial view, e.g. a
// deployment-provided seed list or a simulation's initial membership.
func (n *Node) SeedMembers(entries []Entry) {
	for _, e := range entries {
		n.learnEntry(e)
	}
}

// MemberCount returns the current partial-view size.
func (n *Node) MemberCount() int { return len(n.members) }

// Members returns a copy of the current partial view.
func (n *Node) Members() []Entry {
	out := make([]Entry, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e)
	}
	return out
}

// sampleMembers returns up to k random entries, excluding `exclude`
// (and implicitly the node itself, which is never in the view). The
// sender's own entry is appended so receivers learn fresh contact info.
func (n *Node) sampleMembers(k int, exclude NodeID) []Entry {
	if k <= 0 {
		return nil
	}
	out := make([]Entry, 0, k+1)
	if len(n.order) > 0 {
		start := n.env.Rand(len(n.order))
		for i := 0; i < len(n.order) && len(out) < k; i++ {
			id := n.order[(start+i)%len(n.order)]
			if id == exclude {
				continue
			}
			if e, ok := n.members[id]; ok {
				out = append(out, e)
			}
		}
	}
	out = append(out, n.selfEntry())
	return out
}

// selfEntry returns this node's own membership entry including its
// current landmark vector.
func (n *Node) selfEntry() Entry {
	e := n.self
	if len(n.landVec) > 0 {
		e.Landmarks = append([]uint16(nil), n.landVec...)
	}
	return e
}

// randomMember picks a uniformly random member satisfying ok (nil = any),
// or None if none qualifies.
func (n *Node) randomMember(ok func(NodeID) bool) NodeID {
	if len(n.order) == 0 {
		return None
	}
	start := n.env.Rand(len(n.order))
	for i := 0; i < len(n.order); i++ {
		id := n.order[(start+i)%len(n.order)]
		if _, live := n.members[id]; !live {
			continue
		}
		if ok == nil || ok(id) {
			return id
		}
	}
	return None
}

// nextCandidate returns the next neighbor candidate to consider. While the
// estimated-latency first pass (built lazily once landmark vectors exist)
// has entries, candidates come from it in increasing estimated latency;
// afterwards candidates come from the member list in round-robin order
// (Section 2.2.3).
func (n *Node) nextCandidate(skip func(NodeID) bool) (Entry, bool) {
	if n.estimated == nil && n.landmarksReady() {
		n.buildEstimatePass()
	}
	for len(n.estimated) > 0 {
		id := n.estimated[0]
		n.estimated = n.estimated[1:]
		e, ok := n.members[id]
		if !ok || (skip != nil && skip(id)) {
			continue
		}
		return e, true
	}
	for i := 0; i < len(n.order); i++ {
		if len(n.order) == 0 {
			break
		}
		n.scanIdx = (n.scanIdx + 1) % len(n.order)
		id := n.order[n.scanIdx]
		e, ok := n.members[id]
		if !ok || (skip != nil && skip(id)) {
			continue
		}
		return e, true
	}
	return Entry{}, false
}

// buildEstimatePass sorts the current members by triangulated latency
// estimate for the initial measurement sweep.
func (n *Node) buildEstimatePass() {
	type cand struct {
		id  NodeID
		est int64
	}
	cands := make([]cand, 0, len(n.members))
	for _, id := range n.order {
		if e, ok := n.members[id]; ok {
			cands = append(cands, cand{id: id, est: int64(n.estimateRTT(e))})
		}
	}
	// Insertion sort with ID tie-break: views are small and the order must
	// be deterministic.
	less := func(a, b cand) bool {
		if a.est != b.est {
			return a.est < b.est
		}
		return a.id < b.id
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	n.estimated = make([]NodeID, len(cands))
	for i, c := range cands {
		n.estimated[i] = c.id
	}
}
