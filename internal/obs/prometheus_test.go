package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed exposition family.
type promFamily struct {
	name    string
	typ     string
	help    bool
	samples map[string]float64 // sample line key (name + labels) -> value
	order   []string
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
	helpTypeRe  = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$`)
	validTypeRe = regexp.MustCompile(`^(counter|gauge|histogram|summary|untyped)$`)
)

// parsePrometheus parses text exposition output strictly enough to catch
// format bugs: every line must be HELP, TYPE, or a sample; families must
// not repeat; samples must follow their TYPE line.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	var current *promFamily
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := helpTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed comment line: %q", line)
			}
			kind, name := m[1], m[2]
			switch kind {
			case "HELP":
				if f, ok := families[name]; ok && f.help {
					t.Fatalf("duplicate HELP for %s", name)
				}
				if _, ok := families[name]; !ok {
					families[name] = &promFamily{name: name, samples: map[string]float64{}}
				}
				families[name].help = true
				current = families[name]
			case "TYPE":
				f, ok := families[name]
				if !ok {
					f = &promFamily{name: name, samples: map[string]float64{}}
					families[name] = f
				}
				if f.typ != "" {
					t.Fatalf("duplicate TYPE for %s", name)
				}
				if !validTypeRe.MatchString(m[3]) {
					t.Fatalf("invalid TYPE %q for %s", m[3], name)
				}
				f.typ = m[3]
				current = f
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		sampleName := m[1]
		base := sampleName
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(sampleName, suffix) {
				if f, ok := families[strings.TrimSuffix(sampleName, suffix)]; ok && f.typ == "histogram" {
					base = strings.TrimSuffix(sampleName, suffix)
				}
			}
		}
		f, ok := families[base]
		if !ok {
			t.Fatalf("sample %q before its TYPE line", line)
		}
		if current == nil || current.name != base {
			t.Fatalf("sample %q outside its family block (current %v)", line, current)
		}
		key := sampleName + m[2]
		if _, dup := f.samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		f.samples[key] = v
		f.order = append(f.order, key)
	}
	return families
}

func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("gocast_test_events_total", "help with\nnewline and back\\slash").Add(12)
	r.Gauge("gocast_test_depth", "gauge").Set(-3)
	h := r.Histogram("gocast_test_latency_seconds", "latency", []float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.3, 0.3, 1, 9} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	families := parsePrometheus(t, text)

	for name, wantType := range map[string]string{
		"gocast_test_events_total":    "counter",
		"gocast_test_depth":           "gauge",
		"gocast_test_latency_seconds": "histogram",
	} {
		f, ok := families[name]
		if !ok {
			t.Fatalf("family %s missing:\n%s", name, text)
		}
		if !f.help || f.typ != wantType {
			t.Errorf("family %s: help=%v type=%q, want help and %q", name, f.help, f.typ, wantType)
		}
		if !promNameRe.MatchString(name) {
			t.Errorf("family name %q not a valid metric name", name)
		}
	}

	if got := families["gocast_test_events_total"].samples["gocast_test_events_total"]; got != 12 {
		t.Errorf("counter sample = %v, want 12", got)
	}
	if got := families["gocast_test_depth"].samples["gocast_test_depth"]; got != -3 {
		t.Errorf("gauge sample = %v, want -3", got)
	}

	// Histogram: buckets must be cumulative, +Inf must equal _count, and
	// _sum must match the observations.
	hf := families["gocast_test_latency_seconds"]
	buckets := []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"0.5", 3}, {"2.5", 4}, {"+Inf", 5}}
	prev := 0.0
	for _, b := range buckets {
		key := fmt.Sprintf(`gocast_test_latency_seconds_bucket{le=%q}`, b.le)
		got, ok := hf.samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, text)
		}
		if got != b.want {
			t.Errorf("bucket le=%s = %v, want %v", b.le, got, b.want)
		}
		if got < prev {
			t.Errorf("bucket le=%s not cumulative (%v < %v)", b.le, got, prev)
		}
		prev = got
	}
	if got := hf.samples["gocast_test_latency_seconds_count"]; got != 5 {
		t.Errorf("_count = %v, want 5", got)
	}
	if got := hf.samples["gocast_test_latency_seconds_sum"]; got < 10.64 || got > 10.66 {
		t.Errorf("_sum = %v, want 10.65", got)
	}

	// Escaped help must stay on one line.
	if !strings.Contains(text, `help with\nnewline and back\\slash`) {
		t.Errorf("help escaping wrong:\n%s", text)
	}

	// Families must appear in sorted order (stable scrapes diff cleanly).
	var familyOrder []string
	for sc := bufio.NewScanner(strings.NewReader(text)); sc.Scan(); {
		if m := helpTypeRe.FindStringSubmatch(sc.Text()); m != nil && m[1] == "HELP" {
			familyOrder = append(familyOrder, m[2])
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("families not sorted: %v", familyOrder)
	}
}
