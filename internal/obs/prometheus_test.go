package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gocast/internal/obs/promtest"
)

func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("gocast_test_events_total", "help with\nnewline and back\\slash").Add(12)
	r.Gauge("gocast_test_depth", "gauge").Set(-3)
	h := r.Histogram("gocast_test_latency_seconds", "latency", []float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.3, 0.3, 1, 9} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	families := promtest.Parse(t, text)

	for name, wantType := range map[string]string{
		"gocast_test_events_total":    "counter",
		"gocast_test_depth":           "gauge",
		"gocast_test_latency_seconds": "histogram",
	} {
		f, ok := families[name]
		if !ok {
			t.Fatalf("family %s missing:\n%s", name, text)
		}
		if !f.Help || f.Type != wantType {
			t.Errorf("family %s: help=%v type=%q, want help and %q", name, f.Help, f.Type, wantType)
		}
		if !promtest.ValidName(name) {
			t.Errorf("family name %q not a valid metric name", name)
		}
	}

	if got := families["gocast_test_events_total"].Samples["gocast_test_events_total"]; got != 12 {
		t.Errorf("counter sample = %v, want 12", got)
	}
	if got := families["gocast_test_depth"].Samples["gocast_test_depth"]; got != -3 {
		t.Errorf("gauge sample = %v, want -3", got)
	}

	// Histogram: buckets must be cumulative, +Inf must equal _count, and
	// _sum must match the observations.
	hf := families["gocast_test_latency_seconds"]
	buckets := []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"0.5", 3}, {"2.5", 4}, {"+Inf", 5}}
	prev := 0.0
	for _, b := range buckets {
		key := fmt.Sprintf(`gocast_test_latency_seconds_bucket{le=%q}`, b.le)
		got, ok := hf.Samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, text)
		}
		if got != b.want {
			t.Errorf("bucket le=%s = %v, want %v", b.le, got, b.want)
		}
		if got < prev {
			t.Errorf("bucket le=%s not cumulative (%v < %v)", b.le, got, prev)
		}
		prev = got
	}
	if got := hf.Samples["gocast_test_latency_seconds_count"]; got != 5 {
		t.Errorf("_count = %v, want 5", got)
	}
	if got := hf.Samples["gocast_test_latency_seconds_sum"]; got < 10.64 || got > 10.66 {
		t.Errorf("_sum = %v, want 10.65", got)
	}

	// Escaped help must stay on one line.
	if !strings.Contains(text, `help with\nnewline and back\\slash`) {
		t.Errorf("help escaping wrong:\n%s", text)
	}

	// Families must appear in sorted order (stable scrapes diff cleanly).
	var familyOrder []string
	for sc := bufio.NewScanner(strings.NewReader(text)); sc.Scan(); {
		if kind, name, ok := promtest.HelpTypeLine(sc.Text()); ok && kind == "HELP" {
			familyOrder = append(familyOrder, name)
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("families not sorted: %v", familyOrder)
	}
}

// TestHistogramBucketBoundaryExposition pins the le boundary semantics
// end to end: a value exactly equal to a bucket's upper bound counts in
// that bucket ("le" is less-than-OR-EQUAL), both in the in-memory counts
// and in the exposed text.
func TestHistogramBucketBoundaryExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gocast_test_boundary_seconds", "boundary", []float64{0.1, 0.5, 2.5})
	h.Observe(0.5) // exactly on a bound
	h.Observe(0.1) // exactly on the first bound
	h.Observe(2.5) // exactly on the last finite bound

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	hf := promtest.Parse(t, sb.String())["gocast_test_boundary_seconds"]
	if hf == nil {
		t.Fatalf("family missing:\n%s", sb.String())
	}
	for _, b := range []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"0.5", 2}, {"2.5", 3}, {"+Inf", 3}} {
		key := fmt.Sprintf(`gocast_test_boundary_seconds_bucket{le=%q}`, b.le)
		if got := hf.Samples[key]; got != b.want {
			t.Errorf("bucket le=%s = %v, want %v (boundary value must land in its own bucket)", b.le, got, b.want)
		}
	}
	if got := hf.Samples["gocast_test_boundary_seconds_count"]; got != 3 {
		t.Errorf("_count = %v, want 3", got)
	}
}
