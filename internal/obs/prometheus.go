package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4): one # HELP and # TYPE line per
// family, families sorted by name, histograms with cumulative le buckets
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Gather() {
		if err := writeFamily(w, m); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func writeFamily(w io.Writer, m MetricSnapshot) error {
	help := m.Help
	if help == "" {
		help = m.Name
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		m.Name, escapeHelp(help), m.Name, m.Type); err != nil {
		return err
	}
	switch m.Type {
	case TypeCounter, TypeGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		return err
	case TypeHistogram:
		h := m.Hist
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			m.Name, formatFloat(h.Sum), m.Name, h.Count)
		return err
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot returns a JSON-friendly view of the registry: counters and
// gauges as numbers, histograms as {count, sum, p50, p90, p99} objects.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.Gather() {
		switch m.Type {
		case TypeHistogram:
			out[m.Name] = m.Hist
		default:
			out[m.Name] = m.Value
		}
	}
	return out
}

// WriteJSON renders Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
