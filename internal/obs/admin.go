package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"gocast/internal/dtrace"
	"gocast/internal/trace"
)

// AdminOptions wires a node's observability surfaces into the HTTP admin
// endpoint. Every field is optional; endpoints without a backing surface
// answer 404 (trace) or a trivial response (status, health).
type AdminOptions struct {
	// Registry backs /metrics (Prometheus text format) and feeds the
	// metrics portion of /statusz.
	Registry *Registry
	// Trace backs /tracez and renders recent protocol events.
	Trace *trace.Buffer
	// Spans backs /spans (dissemination trace spans as JSON, consumed by
	// gocast-trace and dtrace.Collect) and /tracez?msg=src/seq (the
	// node-local stitched view of one sampled message).
	Spans func() []dtrace.Span
	// Status returns the /statusz payload (any JSON-marshalable value):
	// degrees, parent, root, incarnation, store occupancy.
	Status func() any
	// Health reports nil when the node is healthy; the error text becomes
	// the /healthz failure body (HTTP 503).
	Health func() error
}

// NewAdminHandler builds the admin mux:
//
//	/metrics  Prometheus text exposition
//	/statusz  JSON node status snapshot
//	/healthz  200 "ok" or 503 with the failure reason
//	/tracez   recent trace-ring events as text (?n=N tail, ?kind=K filter);
//	          with ?msg=src/seq, this node's stitched dissemination trace
//	          of that sampled message instead
//	/spans    dissemination trace spans as a JSON array
//	/debug/pprof/...  net/http/pprof
func NewAdminHandler(o AdminOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if o.Registry == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = o.Registry.WritePrometheus(w)
	})

	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := map[string]any{}
		if o.Status != nil {
			payload["node"] = o.Status()
		}
		if o.Registry != nil {
			payload["metrics"] = o.Registry.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if o.Health != nil {
			if err := o.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		if o.Spans == nil {
			http.NotFound(w, req)
			return
		}
		spans := o.Spans()
		if spans == nil {
			spans = []dtrace.Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
		if s := req.URL.Query().Get("msg"); s != "" {
			serveMsgTrace(w, req, o, s)
			return
		}
		if o.Trace == nil {
			http.NotFound(w, req)
			return
		}
		f := trace.Filter{Node: -1}
		events := o.Trace.Query(f)
		if s := req.URL.Query().Get("kind"); s != "" {
			var keep []trace.Event
			for _, e := range events {
				if e.Kind.String() == s {
					keep = append(keep, e)
				}
			}
			events = keep
		}
		n := len(events)
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v >= 0 && v < n {
				n = v
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range events[len(events)-n:] {
			fmt.Fprintln(w, e)
		}
		fmt.Fprintf(w, "-- %d/%d events shown (%d evicted)\n", n, len(events), o.Trace.Dropped())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// serveMsgTrace answers /tracez?msg=src/seq: the dissemination trace of
// one sampled message stitched from this node's own spans. A single node
// only holds its local view (use gocast-trace to stitch across the whole
// group), but even that distinguishes how the message reached this node.
func serveMsgTrace(w http.ResponseWriter, req *http.Request, o AdminOptions, msg string) {
	if o.Spans == nil {
		http.NotFound(w, req)
		return
	}
	src, seq, err := dtrace.ParseMsg(msg)
	if err != nil {
		http.Error(w, "bad msg (want src/seq): "+err.Error(), http.StatusBadRequest)
		return
	}
	traces := dtrace.Stitch(o.Spans())
	tr := dtrace.Find(traces, src, seq)
	if tr == nil {
		http.Error(w, fmt.Sprintf("no spans recorded for message %s (is sampling on? see Config.TraceSampleEvery)", msg), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, tr.Render())
}

// AdminServer is a running admin HTTP endpoint.
type AdminServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin listens on addr (e.g. "127.0.0.1:0") and serves the admin
// endpoints in a background goroutine until Close.
func ServeAdmin(addr string, o AdminOptions) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewAdminHandler(o),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *AdminServer) Close() error { return s.srv.Close() }
