package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // le=1 gets 0.5 and 1 (bounds are inclusive), le=2 gets 1.5, le=4 gets 3, +Inf gets 100
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile != 0")
	}
	// 100 observations of ~50ms: p50 and p99 must land in the (25ms, 50ms]
	// bucket.
	for i := 0; i < 100; i++ {
		h.ObserveDuration(50 * time.Millisecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got <= 0.025 || got > 0.050 {
			t.Errorf("q%v = %v, want within (0.025, 0.050]", q, got)
		}
	}
	// A clear bimodal split: 90 fast (~5ms) + 10 slow (~5s). p50 stays in
	// the fast bucket, p99 lands in the slow one.
	h2 := NewHistogram(nil)
	for i := 0; i < 90; i++ {
		h2.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(5)
	}
	if p50 := h2.Quantile(0.5); p50 > 0.01 {
		t.Errorf("p50 = %v, want <= 0.01", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 2.5 || p99 > 5 {
		t.Errorf("p99 = %v, want within [2.5, 5]", p99)
	}
	// Observations beyond every bound are reported as the largest finite
	// bound, never infinity.
	h3 := NewHistogram([]float64{1})
	h3.Observe(1e9)
	if got := h3.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1 (largest finite bound)", got)
	}
}

// TestHistogramConcurrentObserveAndRead drives writers and quantile
// readers in parallel; under -race this proves the hot path is data-race
// free, and afterwards the totals must be exact.
func TestHistogramConcurrentObserveAndRead(t *testing.T) {
	h := NewHistogram(nil)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.Quantile(0.99)
				_ = h.Snapshot()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	var fromBuckets int64
	for _, c := range h.Snapshot().Counts {
		fromBuckets += c
	}
	if fromBuckets != writers*perWriter {
		t.Fatalf("bucket total = %d, want %d", fromBuckets, writers*perWriter)
	}
	// Sum of 0..99/1000 per 100 observations = 4.95; writers*perWriter/100
	// blocks of that.
	wantSum := 4.95 * float64(writers*perWriter) / 100
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-3 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestUnsortedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{2, 1})
}
