// Package promtest is a strict Prometheus text-exposition parser for
// tests. It fails the test on anything a real scrape pipeline would
// reject or silently misread: malformed lines, duplicate HELP/TYPE or
// samples, samples outside their family block, and invalid types. Both
// the obs package's own conformance tests and downstream packages that
// register metrics (internal/live) parse their exposition through it.
package promtest

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Family is one parsed exposition family.
type Family struct {
	Name string
	Type string
	Help bool
	// Samples maps sample key (name + label block) to value.
	Samples map[string]float64
	// Order lists sample keys in exposition order.
	Order []string
}

var (
	nameRe      = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
	helpTypeRe  = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$`)
	validTypeRe = regexp.MustCompile(`^(counter|gauge|histogram|summary|untyped)$`)
)

// ValidName reports whether name is a legal Prometheus metric name.
func ValidName(name string) bool { return nameRe.MatchString(name) }

// HelpTypeLine parses a comment line, returning the kind ("HELP" or
// "TYPE") and family name, or ok=false for non-comment lines.
func HelpTypeLine(line string) (kind, name string, ok bool) {
	m := helpTypeRe.FindStringSubmatch(line)
	if m == nil {
		return "", "", false
	}
	return m[1], m[2], true
}

// Parse strictly parses text exposition output, failing t on any format
// violation: every line must be HELP, TYPE, or a sample; families must
// not repeat; samples must follow their TYPE line.
func Parse(t testing.TB, text string) map[string]*Family {
	t.Helper()
	families := map[string]*Family{}
	var current *Family
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := helpTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed comment line: %q", line)
			}
			kind, name := m[1], m[2]
			switch kind {
			case "HELP":
				if f, ok := families[name]; ok && f.Help {
					t.Fatalf("duplicate HELP for %s", name)
				}
				if _, ok := families[name]; !ok {
					families[name] = &Family{Name: name, Samples: map[string]float64{}}
				}
				families[name].Help = true
				current = families[name]
			case "TYPE":
				f, ok := families[name]
				if !ok {
					f = &Family{Name: name, Samples: map[string]float64{}}
					families[name] = f
				}
				if f.Type != "" {
					t.Fatalf("duplicate TYPE for %s", name)
				}
				if !validTypeRe.MatchString(m[3]) {
					t.Fatalf("invalid TYPE %q for %s", m[3], name)
				}
				f.Type = m[3]
				current = f
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		sampleName := m[1]
		base := sampleName
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(sampleName, suffix) {
				if f, ok := families[strings.TrimSuffix(sampleName, suffix)]; ok && f.Type == "histogram" {
					base = strings.TrimSuffix(sampleName, suffix)
				}
			}
		}
		f, ok := families[base]
		if !ok {
			t.Fatalf("sample %q before its TYPE line", line)
		}
		if current == nil || current.Name != base {
			t.Fatalf("sample %q outside its family block (current %v)", line, current)
		}
		key := sampleName + m[2]
		if _, dup := f.Samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		f.Samples[key] = v
		f.Order = append(f.Order, key)
	}
	return families
}
