package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gocast_test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("gocast_test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gocast_test_x_total", "x")
	b := r.Counter("gocast_test_x_total", "ignored on re-registration")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("handles do not share state")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("gocast_test_y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("gocast_test_y_total", "y")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "0leading", "has space", "dash-ed", "dot.ted"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "bad")
		}()
	}
	// And these are fine.
	for _, name := range []string{"a", "_x", "ns:sub_name", "gocast_core_gossips_sent_total"} {
		NewRegistry().Counter(name, "good")
	}
}

func TestGatherSortedAndCollectorRuns(t *testing.T) {
	r := NewRegistry()
	r.Counter("gocast_test_b_total", "b")
	r.Counter("gocast_test_a_total", "a")
	collected := 0
	r.AddCollector(func() {
		collected++
		r.Gauge("gocast_test_mirrored", "set by collector").Set(42)
	})
	ms := r.Gather()
	if collected != 1 {
		t.Fatalf("collector ran %d times, want 1", collected)
	}
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("gather not sorted: %v", names)
		}
	}
	found := false
	for _, m := range ms {
		if m.Name == "gocast_test_mirrored" && m.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("collector-set gauge missing from gather: %v", names)
	}
}

// TestHotPathAllocs pins the acceptance criterion: counter increment and
// histogram observe allocate nothing.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gocast_test_hot_total", "hot")
	h := r.Histogram("gocast_test_hot_seconds", "hot", nil)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.042) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", allocs)
	}
	g := r.Gauge("gocast_test_hot_depth", "hot")
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(3) }); allocs != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", allocs)
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("gocast_test_n_total", "n").Add(3)
	r.Histogram("gocast_test_lat_seconds", "lat", nil).Observe(0.2)
	snap := r.Snapshot()
	if v, ok := snap["gocast_test_n_total"].(int64); !ok || v != 3 {
		t.Fatalf("counter snapshot = %#v", snap["gocast_test_n_total"])
	}
	hs, ok := snap["gocast_test_lat_seconds"].(*HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Fatalf("histogram snapshot = %#v", snap["gocast_test_lat_seconds"])
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gocast_test_n_total": 3`, `"p50"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON snapshot missing %s:\n%s", want, sb.String())
		}
	}
}
