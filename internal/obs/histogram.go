package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds for latency metrics,
// in seconds: 1 ms to 60 s, roughly exponential. They cover everything
// from in-process gossip rounds (sub-millisecond, landing in the first
// bucket) to wide-area tree repair under churn.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// DefByteBuckets are histogram bounds for payload-size metrics, in bytes.
var DefByteBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
}

// Histogram counts observations in fixed buckets and tracks their sum,
// supporting Prometheus histogram exposition and quantile estimates
// (p50/p90/p99) interpolated within buckets. Observe is a handful of
// atomic adds with zero allocations and is safe for concurrent use with
// readers; readers see each observation's bucket, sum, and count updates
// independently, so a snapshot taken mid-observation can be off by the
// in-flight observation — acceptable for monitoring, and race-free.
type Histogram struct {
	bounds []float64      // sorted upper bounds; implicit +Inf bucket at the end
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (nil or empty selects DefLatencyBuckets). Bounds must be sorted
// ascending; the +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be sorted strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing the target rank. Values in the +Inf bucket
// are reported as the largest finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the bucket counts once so the estimate is internally
	// consistent even while writers are active.
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: the best point estimate available is the
			// largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if c == 0 {
			return upper
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent-enough copy for exposition.
type HistogramSnapshot struct {
	Bounds []float64 `json:"-"`
	Counts []int64   `json:"-"` // per-bucket (non-cumulative), +Inf last
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Snapshot copies the histogram's state and quantile estimates.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	// Sum is read after the buckets; with concurrent writers it can lead
	// the bucket counts by in-flight observations, which Prometheus
	// tolerates (scrapes are not atomic either).
	s.Sum = h.Sum()
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}
