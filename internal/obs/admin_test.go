package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gocast/internal/dtrace"
	"gocast/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gocast_test_pings_total", "pings").Add(3)
	tb := trace.NewBuffer(16)
	tb.Add(trace.Event{At: time.Second, Kind: trace.KindDeliver, Node: 1, Peer: 2, Detail: "msg=1/0"})
	tb.Add(trace.Event{At: 2 * time.Second, Kind: trace.KindParentChange, Node: 1, Peer: -1, Detail: "0 -> 2"})

	healthy := true
	srv, err := ServeAdmin("127.0.0.1:0", AdminOptions{
		Registry: reg,
		Trace:    tb,
		Status:   func() any { return map[string]int{"degree": 6} },
		Health: func() error {
			if !healthy {
				return errors.New("overlay disconnected")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "gocast_test_pings_total 3") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var status struct {
		Node    map[string]int `json:"node"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if status.Node["degree"] != 6 {
		t.Errorf("statusz node = %v", status.Node)
	}
	if _, ok := status.Metrics["gocast_test_pings_total"]; !ok {
		t.Errorf("statusz metrics missing counter: %v", status.Metrics)
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthy /healthz = %d %q", code, body)
	}
	healthy = false
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "overlay disconnected") {
		t.Errorf("unhealthy /healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/tracez")
	if code != http.StatusOK || !strings.Contains(body, "deliver") || !strings.Contains(body, "parent") {
		t.Errorf("/tracez = %d:\n%s", code, body)
	}
	code, body = get(t, base+"/tracez?n=1")
	if strings.Contains(body, "deliver") || !strings.Contains(body, "parent") {
		t.Errorf("/tracez?n=1 should show only the newest event (%d):\n%s", code, body)
	}
	code, body = get(t, base+"/tracez?kind=deliver")
	if !strings.Contains(body, "deliver") || strings.Contains(body, "parent") {
		t.Errorf("/tracez?kind=deliver filter broken (%d):\n%s", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", code)
	}
}

// TestAdminSpansAndMsgTrace covers the dissemination-tracing endpoints:
// /spans serves the span buffer as JSON (the feed gocast-trace and
// dtrace.Collect stitch), and /tracez?msg=src/seq renders the node-local
// stitched tree of one message.
func TestAdminSpansAndMsgTrace(t *testing.T) {
	spans := []dtrace.Span{
		{Src: 1, Seq: 5, Node: 1, From: -1, Kind: dtrace.KindInject},
		{Src: 1, Seq: 5, Node: 2, From: 1, Kind: dtrace.KindTreeDeliver, Hops: 1,
			Start: 3 * time.Millisecond, End: 3 * time.Millisecond, Age: 3 * time.Millisecond},
	}
	srv, err := ServeAdmin("127.0.0.1:0", AdminOptions{
		Spans: func() []dtrace.Span { return spans },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans = %d", code)
	}
	var got []dtrace.Span
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/spans not a span JSON array: %v\n%s", err, body)
	}
	if len(got) != 2 || got[0] != spans[0] || got[1] != spans[1] {
		t.Fatalf("/spans round trip = %+v, want %+v", got, spans)
	}

	// The same endpoint feeds dtrace.Collect.
	collected, err := dtrace.Collect([]string{srv.Addr()}, time.Second)
	if err != nil || len(collected) != 2 {
		t.Fatalf("Collect = %d spans, %v", len(collected), err)
	}

	code, body = get(t, base+"/tracez?msg=1/5")
	if code != http.StatusOK || !strings.Contains(body, "inject") || !strings.Contains(body, "node 2 tree") {
		t.Errorf("/tracez?msg=1/5 = %d:\n%s", code, body)
	}
	if code, _ = get(t, base+"/tracez?msg=9/9"); code != http.StatusNotFound {
		t.Errorf("/tracez?msg=9/9 (untraced) = %d, want 404", code)
	}
	if code, _ = get(t, base+"/tracez?msg=banana"); code != http.StatusBadRequest {
		t.Errorf("/tracez?msg=banana = %d, want 400", code)
	}
}

func TestAdminWithoutSurfaces(t *testing.T) {
	srv, err := ServeAdmin("127.0.0.1:0", AdminOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", code)
	}
	if code, _ := get(t, base+"/tracez"); code != http.StatusNotFound {
		t.Errorf("/tracez without buffer = %d, want 404", code)
	}
	if code, _ := get(t, base+"/spans"); code != http.StatusNotFound {
		t.Errorf("/spans without source = %d, want 404", code)
	}
	if code, _ := get(t, base+"/tracez?msg=1/1"); code != http.StatusNotFound {
		t.Errorf("/tracez?msg without spans source = %d, want 404", code)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz without checker = %d, want 200", code)
	}
	code, body := get(t, base+"/statusz")
	if code != http.StatusOK {
		t.Errorf("/statusz = %d %s", code, body)
	}
}
