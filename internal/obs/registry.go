// Package obs is GoCast's unified observability layer: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket latency histograms),
// Prometheus text-format exposition, a JSON snapshot, and the HTTP admin
// endpoint live deployments scrape.
//
// Hot-path operations — Counter.Add, Gauge.Set, Histogram.Observe — are
// single atomic updates with zero allocations, so protocol code can call
// them per message. Registration (Registry.Counter and friends) takes a
// mutex and is meant for setup or scrape time, not per-event use.
//
// Metric names follow gocast_<subsystem>_<name>[_<unit>][_total]:
// gocast_core_tree_forward_latency_seconds, gocast_sync_items_sent_total,
// gocast_store_live_bytes. Names are validated at registration.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be >= 0 to keep the counter monotonic; negative
// deltas are ignored).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Set overwrites the counter's value. It exists for collectors that mirror
// an externally accumulated monotonic total (core protocol counters,
// transport counters) into the registry at scrape time; hot paths should
// use Inc/Add.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Type classifies a registered metric.
type Type uint8

// Metric types.
const (
	TypeCounter Type = iota + 1
	TypeGauge
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// metric is one registered family.
type metric struct {
	name string
	help string
	typ  Type

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds a process's (or one node's) metrics. Lookup and
// registration are mutex-protected; the returned Counter/Gauge/Histogram
// handles are lock-free and should be captured once, not re-looked-up on
// hot paths.
type Registry struct {
	mu         sync.Mutex
	metrics    map[string]*metric
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if len(name) == 0 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the named metric, creating it via mk on first use.
// Registration is idempotent per (name, type); re-registering a name under
// a different type panics — that is a programming error, not runtime
// input.
func (r *Registry) lookup(name, help string, typ Type, mk func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, help: help, typ: typ}
	mk(m)
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, help, TypeCounter, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, help, TypeGauge, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (nil selects DefLatencyBuckets). Bounds
// are fixed at registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookup(name, help, TypeHistogram, func(m *metric) { m.hist = NewHistogram(bounds) })
	return m.hist
}

// AddCollector registers fn to run at the start of every Gather (and thus
// every scrape and snapshot). Collectors refresh mirrored values — e.g.
// copying a node's protocol counters into registry metrics — so the
// registry only pays for them when someone is looking.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// MetricSnapshot is one family's point-in-time state.
type MetricSnapshot struct {
	Name  string
	Help  string
	Type  Type
	Value int64              // counters and gauges
	Hist  *HistogramSnapshot // histograms
}

// Gather runs the collectors and returns every family sorted by name.
func (r *Registry) Gather() []MetricSnapshot {
	// Collectors run outside the lock: they call back into the registry
	// (Gauge(...).Set) and may snapshot other subsystems.
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}

	r.mu.Lock()
	out := make([]MetricSnapshot, 0, len(r.metrics))
	for _, m := range r.metrics {
		s := MetricSnapshot{Name: m.name, Help: m.help, Type: m.typ}
		switch m.typ {
		case TypeCounter:
			s.Value = m.counter.Value()
		case TypeGauge:
			s.Value = m.gauge.Value()
		case TypeHistogram:
			s.Hist = m.hist.Snapshot()
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
