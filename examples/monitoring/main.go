// Monitoring: the paper's motivating workload — disseminating system
// monitoring events to every management node, under churn.
//
// A 40-node group carries a steady stream of monitoring events while
// nodes keep failing abruptly; GoCast's tree delivers events fast and the
// background gossip covers whatever the failures break. The example
// reports the delivery ratio and latency percentiles seen by the
// survivors.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"gocast"
)

const (
	groupSize   = 40
	events      = 150
	eventEvery  = 50 * time.Millisecond
	killEvery   = 20 // kill one node every this many events
	maxFailures = 5
)

type tracker struct {
	mu       sync.Mutex
	sent     map[gocast.MessageID]time.Time
	delays   []time.Duration
	perEvent map[gocast.MessageID]int
	dead     map[int]bool
}

func main() {
	tr := &tracker{
		sent:     make(map[gocast.MessageID]time.Time),
		perEvent: make(map[gocast.MessageID]int),
		dead:     make(map[int]bool),
	}
	cluster := gocast.NewCluster(gocast.ClusterOptions{
		Nodes:  groupSize,
		Config: gocast.FastConfig(),
		Seed:   42,
		OnDeliver: func(node int, id gocast.MessageID, _ []byte) {
			tr.mu.Lock()
			defer tr.mu.Unlock()
			if at, ok := tr.sent[id]; ok {
				tr.delays = append(tr.delays, time.Since(at))
				tr.perEvent[id]++
			}
		},
	})
	defer cluster.Close()

	if !cluster.AwaitDegree(2, 30*time.Second) {
		log.Fatal("overlay failed to form")
	}
	fmt.Printf("monitoring fabric of %d nodes ready\n", groupSize)

	killed := 0
	for i := 0; i < events; i++ {
		src := i % groupSize
		tr.mu.Lock()
		for tr.dead[src] {
			src = (src + 1) % groupSize
		}
		tr.mu.Unlock()

		event := fmt.Sprintf("cpu-alarm host-%03d seq-%d", i%97, i)
		node := cluster.Node(src)
		at := time.Now()
		id := node.Multicast([]byte(event))
		tr.mu.Lock()
		tr.sent[id] = at
		tr.mu.Unlock()

		if i > 0 && i%killEvery == 0 && killed < maxFailures {
			victim := (src + 7) % groupSize
			tr.mu.Lock()
			already := tr.dead[victim]
			if !already {
				tr.dead[victim] = true
			}
			tr.mu.Unlock()
			if !already {
				cluster.Node(victim).Kill()
				killed++
				fmt.Printf("  !! node %d failed abruptly (event %d)\n", victim, i)
			}
		}
		time.Sleep(eventEvery)
	}

	// Allow stragglers to arrive via gossip pulls.
	time.Sleep(3 * time.Second)

	tr.mu.Lock()
	defer tr.mu.Unlock()
	alive := groupSize - killed
	expected := 0
	got := 0
	for id := range tr.sent {
		expected += alive
		got += tr.perEvent[id]
	}
	sort.Slice(tr.delays, func(i, j int) bool { return tr.delays[i] < tr.delays[j] })
	pct := func(q float64) time.Duration {
		if len(tr.delays) == 0 {
			return 0
		}
		return tr.delays[int(q*float64(len(tr.delays)-1))]
	}
	fmt.Printf("\n%d events, %d failures injected, %d survivors\n", events, killed, alive)
	fmt.Printf("delivery ratio (approx): %.4f\n", float64(got)/float64(expected))
	fmt.Printf("event latency: p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), pct(1).Round(time.Millisecond))
}
