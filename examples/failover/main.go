// Failover: the paper's stress test live — kill 20% of the group in one
// instant mid-stream and show that every survivor still receives every
// message, because gossips between overlay neighbors cover the broken
// tree until it heals.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"gocast"
)

const (
	groupSize = 30
	preKill   = 40 // messages before the failure
	postKill  = 40 // messages after it
)

func main() {
	var (
		mu       sync.Mutex
		received = map[gocast.MessageID]map[int]bool{}
		dead     = map[int]bool{}
	)
	cluster := gocast.NewCluster(gocast.ClusterOptions{
		Nodes:  groupSize,
		Config: gocast.FastConfig(),
		Seed:   2026,
		OnDeliver: func(node int, id gocast.MessageID, _ []byte) {
			mu.Lock()
			if received[id] == nil {
				received[id] = make(map[int]bool)
			}
			received[id][node] = true
			mu.Unlock()
		},
	})
	defer cluster.Close()

	if !cluster.AwaitDegree(2, 30*time.Second) {
		log.Fatal("overlay failed to form")
	}
	fmt.Printf("group of %d up; root is node %d\n", groupSize, cluster.Node(0).Root())

	rng := rand.New(rand.NewSource(5))
	aliveSource := func() int {
		for {
			s := rng.Intn(groupSize)
			mu.Lock()
			ok := !dead[s]
			mu.Unlock()
			if ok {
				return s
			}
		}
	}
	send := func(n int) {
		for i := 0; i < n; i++ {
			cluster.Node(aliveSource()).Multicast([]byte(fmt.Sprintf("msg-%d", i)))
			time.Sleep(25 * time.Millisecond)
		}
	}

	fmt.Printf("streaming %d messages...\n", preKill)
	send(preKill)

	// Concurrent failure of 20% of the group (sparing the root so the
	// demo also shows tree repair; root failover is covered by tests).
	kills := groupSize / 5
	fmt.Printf("!! killing %d nodes concurrently\n", kills)
	for len(dead) < kills {
		v := 1 + rng.Intn(groupSize-1)
		mu.Lock()
		fresh := !dead[v]
		if fresh {
			dead[v] = true
		}
		mu.Unlock()
		if fresh {
			cluster.Node(v).Kill()
			fmt.Printf("   node %d down\n", v)
		}
	}

	fmt.Printf("streaming %d more messages through the damaged overlay...\n", postKill)
	send(postKill)

	// Give gossip pulls time to fill the gaps.
	time.Sleep(4 * time.Second)

	mu.Lock()
	defer mu.Unlock()
	survivors := groupSize - len(dead)
	complete := 0
	worst := survivors
	for _, nodes := range received {
		got := 0
		for n := range nodes {
			if !dead[n] {
				got++
			}
		}
		if got == survivors {
			complete++
		}
		if got < worst {
			worst = got
		}
	}
	total := len(received)
	fmt.Printf("\n%d messages, %d survivors\n", total, survivors)
	fmt.Printf("messages delivered to every survivor: %d/%d\n", complete, total)
	fmt.Printf("worst message coverage: %d/%d survivors\n", worst, survivors)
	if complete != total {
		log.Fatal("FAILED: some survivors missed messages")
	}
	fmt.Println("OK: dependable delivery held through 20% concurrent failures")
}
