// Cachesync: keeping replica caches consistent by multicasting updates —
// the paper's "propagating updates of shared state to maintain cache
// consistency" use case.
//
// Every node holds a key/value cache. Writers multicast versioned updates;
// replicas apply an update only if its version is newer than what they
// hold (so duplicate-free, possibly reordered delivery still converges).
// At the end, every replica's cache must be identical.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"gocast"
)

const (
	replicas = 24
	keys     = 16
	writes   = 200
)

type update struct {
	Key     string `json:"key"`
	Value   int    `json:"value"`
	Version int    `json:"version"`
}

type cache struct {
	mu      sync.Mutex
	entries map[string]update
}

func (c *cache) apply(u update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[u.Key]; !ok || u.Version > cur.Version {
		c.entries[u.Key] = u
	}
}

func (c *cache) snapshot() map[string]update {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]update, len(c.entries))
	for k, v := range c.entries {
		out[k] = v
	}
	return out
}

func main() {
	caches := make([]*cache, replicas)
	for i := range caches {
		caches[i] = &cache{entries: make(map[string]update)}
	}

	cluster := gocast.NewCluster(gocast.ClusterOptions{
		Nodes:  replicas,
		Config: gocast.FastConfig(),
		Seed:   7,
		OnDeliver: func(node int, _ gocast.MessageID, payload []byte) {
			var u update
			if err := json.Unmarshal(payload, &u); err != nil {
				log.Printf("replica %d: bad update: %v", node, err)
				return
			}
			caches[node].apply(u)
		},
	})
	defer cluster.Close()

	if !cluster.AwaitDegree(2, 30*time.Second) {
		log.Fatal("overlay failed to form")
	}
	fmt.Printf("%d replicas connected\n", replicas)

	rng := rand.New(rand.NewSource(99))
	version := 0
	for w := 0; w < writes; w++ {
		version++
		u := update{
			Key:     fmt.Sprintf("key-%02d", rng.Intn(keys)),
			Value:   rng.Intn(10000),
			Version: version,
		}
		payload, err := json.Marshal(u)
		if err != nil {
			log.Fatal(err)
		}
		writer := rng.Intn(replicas)
		cluster.Node(writer).Multicast(payload)
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("%d updates written across %d keys from random replicas\n", writes, keys)

	// Wait for convergence.
	deadline := time.Now().Add(30 * time.Second)
	for {
		want := caches[0].snapshot()
		agree := len(want) > 0
		for _, c := range caches[1:] {
			if !reflect.DeepEqual(want, c.snapshot()) {
				agree = false
				break
			}
		}
		if agree {
			fmt.Printf("converged: all %d replicas hold identical caches (%d keys)\n",
				replicas, len(want))
			hot := want[fmt.Sprintf("key-%02d", 0)]
			fmt.Printf("e.g. %s = %d (version %d)\n", hot.Key, hot.Value, hot.Version)
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("replicas failed to converge")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
