// Quickstart: boot a 32-node in-process GoCast group, multicast one
// message, and watch it reach every node through the overlay tree.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gocast"
)

func main() {
	const groupSize = 32

	var (
		mu        sync.Mutex
		delivered = map[int]time.Time{}
	)
	cluster := gocast.NewCluster(gocast.ClusterOptions{
		Nodes:  groupSize,
		Config: gocast.FastConfig(),
		Seed:   time.Now().UnixNano(),
		OnDeliver: func(node int, id gocast.MessageID, payload []byte) {
			mu.Lock()
			delivered[node] = time.Now()
			mu.Unlock()
		},
	})
	defer cluster.Close()

	fmt.Printf("booting a %d-node group...\n", groupSize)
	if !cluster.AwaitDegree(2, 30*time.Second) {
		log.Fatal("overlay failed to form")
	}
	fmt.Println("overlay formed; every node has neighbors")

	start := time.Now()
	id := cluster.Node(5).Multicast([]byte("hello, group"))
	fmt.Printf("node 5 multicast %s\n", id)

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n == groupSize {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("only %d/%d nodes delivered", n, groupSize)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var last time.Time
	mu.Lock()
	for _, at := range delivered {
		if at.After(last) {
			last = at
		}
	}
	mu.Unlock()
	fmt.Printf("all %d nodes delivered within %v\n", groupSize, last.Sub(start).Round(time.Millisecond))

	// Peek at the overlay from one node's perspective.
	nb := cluster.Node(5).Neighbors()
	fmt.Printf("node 5 has %d overlay neighbors:", len(nb))
	for _, info := range nb {
		fmt.Printf(" %d(%s)", info.ID, info.Kind)
	}
	fmt.Println()
}
