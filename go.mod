module gocast

go 1.22
