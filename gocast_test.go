package gocast

import (
	"sync"
	"testing"
	"time"
)

func TestRunSimulationDefaultsAndDeterminism(t *testing.T) {
	opts := SimOptions{Nodes: 96, Warmup: 60 * time.Second, Messages: 20}
	a := RunSimulation(opts)
	b := RunSimulation(opts)
	if a.DeliveryRatio != 1 {
		t.Fatalf("delivery ratio = %v, want 1", a.DeliveryRatio)
	}
	if a.P50 != b.P50 || a.Max != b.Max || a.Counters.GossipsSent != b.Counters.GossipsSent {
		t.Fatalf("same-seed simulations diverged: %+v vs %+v", a, b)
	}
	if a.MeanDegree < 5 || a.MeanDegree > 8 {
		t.Errorf("mean degree = %.2f, want near 6", a.MeanDegree)
	}
	if a.LargestComponentRatio != 1 {
		t.Errorf("overlay not connected: q=%v", a.LargestComponentRatio)
	}
	if a.AvgTreeLatency > a.AvgOverlayLatency {
		t.Errorf("tree links (%v) worse than overlay average (%v)", a.AvgTreeLatency, a.AvgOverlayLatency)
	}
}

func TestRunSimulationWithFailures(t *testing.T) {
	res := RunSimulation(SimOptions{
		Nodes:        96,
		Warmup:       60 * time.Second,
		Messages:     20,
		FailFraction: 0.2,
		Seed:         3,
	})
	if res.DeliveryRatio != 1 {
		t.Fatalf("delivery ratio under failures = %v, want 1 (gossip covers the tree)", res.DeliveryRatio)
	}
}

func TestVariantConfigsThroughFacade(t *testing.T) {
	cfg := RandomOverlayConfig()
	res := RunSimulation(SimOptions{
		Nodes:    64,
		Warmup:   40 * time.Second,
		Messages: 10,
		Config:   &cfg,
		Seed:     4,
	})
	if res.DeliveryRatio != 1 {
		t.Fatalf("random-overlay delivery = %v", res.DeliveryRatio)
	}
	if res.Counters.TreeForwards != 0 {
		t.Fatalf("tree disabled but %d tree forwards", res.Counters.TreeForwards)
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	var (
		mu    sync.Mutex
		count int
	)
	c := NewCluster(ClusterOptions{
		Nodes:  8,
		Config: FastConfig(),
		Seed:   5,
		OnDeliver: func(int, MessageID, []byte) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	defer c.Close()
	if !c.AwaitDegree(2, 20*time.Second) {
		t.Fatalf("cluster failed to form")
	}
	c.Node(1).Multicast([]byte("facade"))
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n == 8 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered to %d/8", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDefaultConfigExposed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CRand != 1 || cfg.CNear != 5 || !cfg.EnableTree {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
	if ProximityOverlayConfig().EnableTree || RandomOverlayConfig().EnableTree {
		t.Fatalf("overlay baselines must disable the tree")
	}
}
