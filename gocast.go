// Package gocast implements GoCast (Tang, Chang, Ward — DSN 2005):
// gossip-enhanced overlay multicast for fast and dependable group
// communication.
//
// GoCast organizes nodes into a proximity-aware overlay with tightly
// controlled node degrees (by default one random neighbor for long-range
// connectivity plus five nearby neighbors for efficiency). Multicast
// messages propagate rapidly through a low-latency tree embedded in the
// overlay, while in the background nodes gossip message summaries with
// their overlay neighbors and pull anything the tree failed to deliver —
// combining the speed of tree multicast with the resilience of gossip.
//
// # Live groups
//
// A real-time node is created with NewNode over a Transport (TCP/UDP via
// NewTCPTransport, or an in-memory fabric via NewMemNetwork). The first
// node calls BecomeRoot; everyone else Joins through any existing member:
//
//	tr, _ := gocast.NewTCPTransport(1, "0.0.0.0:7946")
//	n := gocast.NewNode(gocast.NodeOptions{
//		ID:        1,
//		Config:    gocast.DefaultConfig(),
//		Transport: tr,
//		OnDeliver: func(id gocast.MessageID, payload []byte, age time.Duration) {
//			fmt.Printf("got %s: %s\n", id, payload)
//		},
//	})
//	n.Join(gocast.Entry{ID: 0, Addr: "seed.example:7946"})
//	n.Multicast([]byte("hello group"))
//
// NewCluster boots a whole in-process group in one call — see
// examples/quickstart.
//
// # Simulation
//
// The same protocol code runs on a deterministic discrete-event simulator
// over a synthetic wide-area latency model, which is how the paper's
// evaluation is reproduced (cmd/gocast-experiments). RunSimulation exposes
// a one-call version for exploring configurations:
//
//	res := gocast.RunSimulation(gocast.SimOptions{Nodes: 1024, Messages: 1000})
//	fmt.Println(res.P99, res.DeliveryRatio)
package gocast

import (
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
	"gocast/internal/live"
	"gocast/internal/netsim"
	"gocast/internal/obs"
	"gocast/internal/scenario"
	"gocast/internal/store"
	"gocast/internal/trace"
)

// Re-exported protocol types. The aliases keep the public API in one
// importable package while the implementation lives in internal packages.
type (
	// NodeID identifies a node in the group.
	NodeID = core.NodeID
	// MessageID identifies a multicast message (source node + sequence).
	MessageID = core.MessageID
	// Entry is a contact record: node ID, transport address, and an
	// optional landmark vector for latency estimation.
	Entry = core.Entry
	// Config holds the protocol parameters (Section 2 of the paper).
	Config = core.Config
	// Counters is a snapshot of a node's protocol activity.
	Counters = core.Counters
	// NeighborInfo describes one overlay link.
	NeighborInfo = core.NeighborInfo
	// LinkKind distinguishes random from nearby overlay links.
	LinkKind = core.LinkKind
	// DeliverFunc receives each multicast exactly once.
	DeliverFunc = core.DeliverFunc

	// Node is a live (real-time) GoCast participant.
	Node = live.Node
	// NodeOptions configures a live node.
	NodeOptions = live.NodeOptions
	// Transport moves protocol messages for live nodes.
	Transport = live.Transport
	// TCPTransport is the TCP+UDP transport with backoff redial, write
	// deadlines, and idle reaping.
	TCPTransport = live.TCPTransport
	// TCPOptions tunes the TCP transport's resilience behavior.
	TCPOptions = live.TCPOptions
	// MemNetwork is an in-memory transport fabric for in-process groups.
	MemNetwork = live.MemNetwork
	// FaultPlan declares a schedule of injected network faults.
	FaultPlan = live.FaultPlan
	// FaultPhase is one time window of injected faults (drops, delays,
	// duplicates, reorders, partitions, slow links).
	FaultPhase = live.FaultPhase
	// FaultController evaluates a FaultPlan consistently across a group of
	// wrapped transports.
	FaultController = live.FaultController
	// FaultTransport applies a FaultController's verdicts on top of any
	// Transport.
	FaultTransport = live.FaultTransport
	// Direction names an ordered endpoint pair for asymmetric fault rules.
	Direction = live.Direction
	// SlowLink adds extra delay to traffic matching one direction.
	SlowLink = live.SlowLink
	// BandwidthCap throttles matching traffic to a byte rate, modeled as a
	// serial link with burst allowance.
	BandwidthCap = live.BandwidthCap
	// Cluster is an in-process group of live nodes.
	Cluster = live.Cluster
	// ClusterOptions configures an in-process cluster.
	ClusterOptions = live.ClusterOptions

	// Obituary announces a dead (id, incarnation) pair; obituaries ride on
	// gossip so departures quarantine quickly group-wide.
	Obituary = core.Obituary
	// ChurnPlan declares seeded Poisson join/leave/crash/restart workloads.
	ChurnPlan = churn.Plan
	// ChurnEvent is one scheduled churn action.
	ChurnEvent = churn.Event
	// ChurnKind enumerates churn event types.
	ChurnKind = churn.Kind
	// ChurnOptions binds a ChurnPlan to an in-process cluster.
	ChurnOptions = live.ChurnOptions
	// ChurnStats counts what a churn run actually did.
	ChurnStats = live.ChurnStats

	// Registry is a lock-cheap metrics registry (counters, gauges, latency
	// histograms) with Prometheus text exposition; every live Node carries
	// one, and NodeOptions.Registry shares an external one.
	Registry = obs.Registry
	// MetricSnapshot is one registry family's point-in-time state.
	MetricSnapshot = obs.MetricSnapshot
	// AdminServer is a running HTTP admin endpoint (/metrics, /statusz,
	// /healthz, /tracez, /debug/pprof).
	AdminServer = obs.AdminServer
	// AdminOptions wires a node's observability surfaces into ServeAdmin.
	AdminOptions = obs.AdminOptions
	// StatusSnapshot is a live node's point-in-time status (/statusz body).
	StatusSnapshot = live.StatusSnapshot
	// TraceBuffer is a bounded ring of recent protocol events; every live
	// Node records into one (see NodeOptions.TraceCapacity/TraceSample).
	TraceBuffer = trace.Buffer
	// TraceEvent is one recorded protocol event.
	TraceEvent = trace.Event
	// TraceFilter selects trace events when querying a TraceBuffer.
	TraceFilter = trace.Filter

	// Class is a message's admission class under overload (Critical,
	// Repair, Background); queues shed Background first.
	Class = core.Class
	// OverloadLevel is a node's degradation state (Healthy, Degraded,
	// Shedding), driven by queue occupancy and budget pressure.
	OverloadLevel = core.OverloadLevel
	// OverloadOptions tunes a live node's overload protection: mailbox
	// lane capacities, memory budget, shed policy, and the degradation
	// state machine's thresholds.
	OverloadOptions = live.OverloadOptions
	// QueuePressure is a transport's send-queue occupancy summary, feeding
	// the overload governor.
	QueuePressure = live.QueuePressure
	// AdmissionCaps bounds per-class in-flight traffic in simulation,
	// mirroring the live admission model.
	AdmissionCaps = netsim.AdmissionCaps

	// MessageStore buffers multicast payloads between receipt and
	// reclamation; Config.NewStore swaps in alternative implementations.
	MessageStore = store.MessageStore
	// StoreLimits bounds a message store (count cap, byte cap, retention).
	StoreLimits = store.Limits
	// StoreID identifies a message inside a store (source + sequence).
	StoreID = store.ID
	// SourceRange is one per-source watermark range of a sync digest.
	SourceRange = store.SourceRange
)

// Churn event kinds.
const (
	ChurnJoin    = churn.Join
	ChurnLeave   = churn.Leave
	ChurnCrash   = churn.Crash
	ChurnRestart = churn.Restart
)

// Link kinds.
const (
	Random = core.Random
	Nearby = core.Nearby
)

// None is the absent-node sentinel.
const None = core.None

// Message admission classes.
const (
	ClassCritical   = core.ClassCritical
	ClassRepair     = core.ClassRepair
	ClassBackground = core.ClassBackground
)

// Overload degradation levels.
const (
	OverloadHealthy  = core.OverloadHealthy
	OverloadDegraded = core.OverloadDegraded
	OverloadShedding = core.OverloadShedding
)

// DefaultConfig returns the paper's recommended parameters (C_rand=1,
// C_near=5, 0.1 s gossip and maintenance periods, 15 s heartbeats).
func DefaultConfig() Config { return core.DefaultConfig() }

// ProximityOverlayConfig returns the gossip-only variant over the
// proximity-aware overlay (the paper's "proximity overlay" baseline).
func ProximityOverlayConfig() Config { return core.ProximityOverlayConfig() }

// RandomOverlayConfig returns the gossip-only variant over a purely
// random overlay (the paper's "random overlay" baseline).
func RandomOverlayConfig() Config { return core.RandomOverlayConfig() }

// FastConfig returns protocol timing scaled for in-process clusters.
func FastConfig() Config { return live.FastConfig() }

// NewMemoryStore returns the default bounded in-memory message store —
// useful as the inner store when wrapping with instrumentation via
// Config.NewStore.
func NewMemoryStore(l StoreLimits) MessageStore { return store.NewMemory(l) }

// NewNode starts a live GoCast node.
func NewNode(opts NodeOptions) *Node { return live.NewNode(opts) }

// NewRegistry returns an empty metrics registry, for sharing between a
// node and process-level metrics via NodeOptions.Registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ServeAdmin starts the HTTP admin endpoint (Prometheus /metrics, JSON
// /statusz, /healthz, /tracez, net/http/pprof) on addr in a background
// goroutine.
func ServeAdmin(addr string, o AdminOptions) (*AdminServer, error) { return obs.ServeAdmin(addr, o) }

// PrometheusContentType is the Content-Type of /metrics responses.
const PrometheusContentType = obs.PrometheusContentType

// ErrStopped reports an API call against a live node after Close or Kill.
var ErrStopped = live.ErrStopped

// ErrOverloaded reports a Publish rejected because the node is Shedding;
// retry after backoff, or watch Node.Overload for recovery.
var ErrOverloaded = live.ErrOverloaded

// NewTCPTransport listens for the group's TCP and UDP traffic with
// default resilience options.
func NewTCPTransport(id NodeID, listenAddr string) (*TCPTransport, error) {
	return live.NewTCPTransport(id, listenAddr)
}

// NewTCPTransportWithOptions listens with explicit reconnect/deadline
// tuning.
func NewTCPTransportWithOptions(id NodeID, listenAddr string, opts TCPOptions) (*TCPTransport, error) {
	return live.NewTCPTransportWithOptions(id, listenAddr, opts)
}

// NewFaultController starts a fault-injection controller; wrap every
// transport of a test group through it so pairwise rules (partitions) are
// consistent.
func NewFaultController(plan FaultPlan) *FaultController {
	return live.NewFaultController(plan)
}

// NewMemNetwork creates an in-memory transport fabric with the given base
// latency.
func NewMemNetwork(base time.Duration, seed int64) *MemNetwork {
	return live.NewMemNetwork(base, seed)
}

// NewCluster boots an in-process group of live nodes.
func NewCluster(opts ClusterOptions) *Cluster { return live.NewCluster(opts) }

// Chaos-scenario engine (internal/scenario): declarative fault timelines
// with continuously checked invariants, runnable on the deterministic
// simulator or a live in-process cluster. See cmd/gocast-scenarios.
type (
	// Scenario declares node groups, a fault-phase timeline, and the
	// invariants to hold through it.
	Scenario = scenario.Scenario
	// ScenarioOptions selects the substrate, seed, and observability
	// wiring for one run.
	ScenarioOptions = scenario.Options
	// ScenarioReport is a completed run's verdict (deterministic on the
	// netsim substrate).
	ScenarioReport = scenario.Report
)

// ScenarioLibrary returns the committed chaos scenarios (also stored as
// JSON under scenarios/).
func ScenarioLibrary() []*Scenario { return scenario.Library() }

// RunScenario executes a scenario and returns its invariant report.
func RunScenario(s *Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(s, opts)
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// SimOptions configures a one-call simulation run.
type SimOptions struct {
	// Nodes is the system size (default 256).
	Nodes int
	// Config is the protocol configuration (default DefaultConfig).
	Config *Config
	// Warmup is the adaptation period before messages (default 150 s of
	// simulated time).
	Warmup time.Duration
	// Messages is how many multicasts to measure (default 100).
	Messages int
	// Rate is the injection rate per second (default 100).
	Rate float64
	// FailFraction kills this fraction of nodes (without repair) right
	// before messages are injected.
	FailFraction float64
	// Seed drives all randomness (default 1).
	Seed int64
}

// SimResult summarizes a simulation run.
type SimResult struct {
	// DeliveryRatio is delivered / expected over (message, live node)
	// pairs.
	DeliveryRatio float64
	// P50, P90, P99, Max summarize the delivery delay distribution.
	P50, P90, P99, Max time.Duration
	// MeanDegree is the average overlay degree after adaptation.
	MeanDegree float64
	// AvgOverlayLatency and AvgTreeLatency are mean one-way link
	// latencies after adaptation.
	AvgOverlayLatency, AvgTreeLatency time.Duration
	// LargestComponentRatio is the connectivity metric q.
	LargestComponentRatio float64
	// Counters aggregates protocol activity over all nodes.
	Counters Counters
}

// RunSimulation runs the GoCast protocol on the discrete-event simulator
// over a synthetic King-like latency model and reports delivery and
// overlay quality statistics. Runs are deterministic per seed.
func RunSimulation(opts SimOptions) SimResult {
	if opts.Nodes <= 0 {
		opts.Nodes = 256
	}
	cfg := core.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if opts.Warmup <= 0 {
		opts.Warmup = 150 * time.Second
	}
	if opts.Messages <= 0 {
		opts.Messages = 100
	}
	if opts.Rate <= 0 {
		opts.Rate = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := netsim.New(netsim.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom((cfg.TargetDegree() + 1) / 2)
	c.Start(0)
	c.Run(opts.Warmup)

	res := SimResult{
		MeanDegree:            c.DegreeHistogram().Mean(),
		AvgOverlayLatency:     c.AvgOverlayLinkLatency(),
		AvgTreeLatency:        c.AvgTreeLinkLatency(),
		LargestComponentRatio: c.LargestComponentRatio(),
	}
	if opts.FailFraction > 0 {
		c.SetMaintenance(false)
		c.SetDetection(false)
		c.KillFraction(opts.FailFraction)
	}
	c.InjectStream(opts.Messages, opts.Rate, nil)
	c.Run(time.Duration(float64(opts.Messages)/opts.Rate*float64(time.Second)) + 60*time.Second)
	rec := c.Delays()
	cdf := rec.CDF()
	res.DeliveryRatio = rec.DeliveryRatio()
	res.P50 = cdf.Quantile(0.50)
	res.P90 = cdf.Quantile(0.90)
	res.P99 = cdf.Quantile(0.99)
	res.Max = cdf.Max()
	res.Counters = c.SumCounters()
	return res
}
