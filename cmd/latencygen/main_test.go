package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndCheckRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.lat")
	if err := run([]string{"-sites", "40", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output file missing: %v", err)
	}
	if err := run([]string{"-check", out}); err != nil {
		t.Fatalf("check of generated file failed: %v", err)
	}
}

func TestCheckMissingFile(t *testing.T) {
	if err := run([]string{"-check", "/does/not/exist"}); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatalf("bad flag accepted")
	}
}
