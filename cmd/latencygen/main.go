// Command latencygen synthesizes a King-like wide-area latency matrix,
// prints its distribution statistics, and optionally saves it in the text
// format accepted by the simulators (so real measurement data can be
// swapped in with the same tooling).
//
// Example:
//
//	latencygen -sites 1740 -seed 1 -out king-synth.lat
package main

import (
	"flag"
	"fmt"
	"os"

	"gocast/internal/latency"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "latencygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latencygen", flag.ContinueOnError)
	var (
		sites = fs.Int("sites", latency.KingSites, "number of measurement sites")
		seed  = fs.Int64("seed", 1, "random seed")
		out   = fs.String("out", "", "write the matrix to this file")
		check = fs.String("check", "", "load a matrix file and print its statistics instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *latency.Matrix
	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = latency.Load(f)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d sites from %s\n", m.Sites(), *check)
	} else {
		m = latency.Synthesize(*sites, *seed)
		fmt.Printf("synthesized %d sites (seed %d)\n", *sites, *seed)
	}

	st := m.Stats()
	fmt.Printf("one-way latency: mean %v  min %v  p50 %v  p90 %v  p99 %v  max %v\n",
		st.Mean, st.Min, st.P50, st.P90, st.P99, st.Max)
	fmt.Printf("King reference:  mean %v  max %v\n", latency.KingMeanOneWay, latency.KingMaxOneWay)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
