// Command gocast-experiments regenerates the tables and figures of the
// GoCast paper (DSN 2005) from the simulation harness in this repository.
//
// Usage:
//
//	gocast-experiments -fig all -scale quick
//	gocast-experiments -fig 3a -scale paper
//
// At -scale paper the setup matches the publication (1,024 nodes, 500 s of
// adaptation, 1,000 messages at 100/s; Figure 4 additionally runs 8,192
// nodes) and a full run takes tens of minutes on one core. -scale quick
// keeps every experiment's shape at a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gocast/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocast-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocast-experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "which figure to regenerate: all,1,3a,3b,3a-curves,3b-curves,4,5a,5b,6,hears,redundancy,linkchanges,randsweep,diameter,stress,fanoutsweep,coopcast,ablate,churn,recovery,paths,scale ('all' skips the -curves variants and the scale sweep)")
		scale    = fs.String("scale", "quick", "experiment scale: paper or quick")
		nodes    = fs.Int("nodes", 0, "override the node count")
		seed     = fs.Int64("seed", 0, "override the random seed")
		warmup   = fs.Duration("warmup", 0, "override the adaptation warmup")
		msgs     = fs.Int("messages", 0, "override the message count")
		parallel = fs.Int("parallel", 1, "simulations to run concurrently within an experiment (0 = NumCPU); results are identical at any value")
		shards   = fs.Int("shards", 0, "simulation shards per run (0/1 = sequential; results are identical at any value, multi-core wall clock is not)")
		sizes    = fs.String("scale-sizes", "", "comma-separated node counts for -fig scale (default 4096,32768,102400 paper / 1024,8192 quick)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel <= 0 {
		*parallel = runtime.NumCPU()
	}
	experiments.SetParallelism(*parallel)

	var sc experiments.Scale
	switch *scale {
	case "paper":
		sc = experiments.PaperScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *msgs > 0 {
		sc.Messages = *msgs
	}
	if *shards > 0 {
		sc.Shards = *shards
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := 0
	emit := func(name string, gen func() *experiments.Report) {
		// The -curves variants duplicate their parent experiment's cost,
		// so "all" skips them; request them explicitly.
		if !want[name] && !(all && !strings.HasSuffix(name, "-curves")) {
			return
		}
		ran++
		start := time.Now()
		rep := gen()
		fmt.Println(rep.String())
		fmt.Printf("# generated in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	emit("1", func() *experiments.Report { return experiments.Figure1(1024, 20) })
	emit("3a", func() *experiments.Report { return experiments.Figure3(sc, 0) })
	emit("3b", func() *experiments.Report { return experiments.Figure3(sc, 0.20) })
	emit("3a-curves", func() *experiments.Report {
		return experiments.Figure3Curves(sc, 0, 40, 4*time.Second)
	})
	emit("3b-curves", func() *experiments.Report {
		return experiments.Figure3Curves(sc, 0.20, 40, 4*time.Second)
	})
	emit("4", func() *experiments.Report {
		large := sc
		large.Nodes = sc.Nodes * 8
		large.Seed = sc.Seed + 7
		return experiments.Figure4(sc, large, 0.20)
	})
	emit("5a", func() *experiments.Report { return experiments.Figure5a(sc) })
	emit("5b", func() *experiments.Report {
		until, step := 200*time.Second, 10*time.Second
		if sc.Warmup < until {
			until, step = sc.Warmup, sc.Warmup/10
		}
		return experiments.Figure5b(sc, until, step)
	})
	emit("6", func() *experiments.Report { return experiments.Figure6(sc, nil, nil) })
	emit("hears", func() *experiments.Report { return experiments.HearCounts(sc, 5) })
	emit("redundancy", func() *experiments.Report { return experiments.Redundancy(sc, nil) })
	emit("linkchanges", func() *experiments.Report {
		return experiments.LinkChanges(sc, sc.Warmup, sc.Warmup/20)
	})
	emit("randsweep", func() *experiments.Report { return experiments.RandomLinkSweep(sc) })
	emit("diameter", func() *experiments.Report {
		sizes := []int{256, 512, 1024, 2048, 4096, 8192}
		if *scale == "quick" {
			sizes = []int{128, 256, 512, 1024}
		}
		return experiments.Diameter(sizes, sc.Warmup, sc.Seed)
	})
	emit("stress", func() *experiments.Report {
		ases := 256
		if sc.Nodes < 512 {
			ases = 128
		}
		return experiments.LinkStress(sc, ases, 1000)
	})
	emit("fanoutsweep", func() *experiments.Report { return experiments.FanoutSweep(sc, nil) })
	emit("coopcast", func() *experiments.Report { return experiments.Coopcast(sc, nil, 0.07) })
	emit("churn", func() *experiments.Report { return experiments.ChurnSweep(sc, nil) })
	emit("recovery", func() *experiments.Report { return experiments.Recovery(sc, 30*time.Second) })
	emit("paths", func() *experiments.Report { return experiments.Paths(sc, 0.10) })
	emit("scale", func() *experiments.Report {
		// Sweep points are huge; use a short horizon so the largest sizes
		// finish in minutes, and honor explicit -warmup/-messages overrides.
		sw := sc
		sw.Warmup, sw.Messages, sw.Rate, sw.Drain = 30*time.Second, 10, 2, 20*time.Second
		if *warmup > 0 {
			sw.Warmup = *warmup
		}
		if *msgs > 0 {
			sw.Messages = *msgs
		}
		pts := []int{4096, 32768, 102400}
		if *scale == "quick" {
			pts = []int{1024, 8192}
		}
		if *sizes != "" {
			pts = pts[:0]
			for _, s := range strings.Split(*sizes, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "gocast-experiments: bad -scale-sizes entry %q\n", s)
					os.Exit(1)
				}
				pts = append(pts, n)
			}
		}
		return experiments.ScaleSweep(sw, pts)
	})
	emit("ablate", func() *experiments.Report {
		// Combine the three ablations into one printout.
		a, b, c := experiments.AblateC1(sc), experiments.AblateDropTrigger(sc), experiments.AblateC4(sc)
		fmt.Println(a.String())
		fmt.Println(b.String())
		return c
	})

	if ran == 0 {
		return fmt.Errorf("no experiment matched -fig %q", *fig)
	}
	return nil
}
