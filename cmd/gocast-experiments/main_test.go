package main

import "testing"

func TestFigure1RunsQuickly(t *testing.T) {
	if err := run([]string{"-fig", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigureRejected(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Fatalf("unknown figure accepted")
	}
}

func TestUnknownScaleRejected(t *testing.T) {
	if err := run([]string{"-scale", "mega"}); err == nil {
		t.Fatalf("unknown scale accepted")
	}
}

func TestTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	err := run([]string{
		"-fig", "5a,hears",
		"-scale", "quick",
		"-nodes", "64",
		"-warmup", "30s",
		"-messages", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}
