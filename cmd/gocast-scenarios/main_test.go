package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsLibrary(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"split-brain-heal", "churn-storm", "rolling-restart", "FAULTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "nope"}, &b); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// tinyScenario is a fast well-formed scenario file for end-to-end runs.
const tinyScenario = `{
  "name": "tiny",
  "seed": 3,
  "groups": [
    {"name": "pubs", "role": "publisher", "nodes": 4, "rate": 2, "protected": true},
    {"name": "subs", "role": "subscriber", "nodes": 8}
  ],
  "warmup": "45s",
  "phases": [{"name": "lossy", "duration": "30s", "loss": 0.05}],
  "drain": "60s",
  "invariants": {"atomicity": true, "tree_valid": true, "convergence": true, "recovery": true, "no_critical_sheds": true}
}`

func TestRunScenarioFileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-scenario", path, "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"scenario": "tiny"`) || !strings.Contains(out, `"passed": true`) {
		t.Fatalf("unexpected JSON report:\n%s", out)
	}
}

func TestSpliceSectionReplacesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "EXP.md")
	if err := os.WriteFile(path, []byte("# doc\n\nbody\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := spliceSection(path, tableBegin+"\nv1\n"+tableEnd); err != nil {
		t.Fatal(err)
	}
	if err := spliceSection(path, tableBegin+"\nv2\n"+tableEnd); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	out := string(data)
	if strings.Contains(out, "v1") || !strings.Contains(out, "v2") {
		t.Fatalf("splice did not replace the marked block:\n%s", out)
	}
	if strings.Count(out, tableBegin) != 1 || !strings.Contains(out, "# doc") {
		t.Fatalf("splice damaged the document:\n%s", out)
	}
}

func TestFormatCount(t *testing.T) {
	for n, want := range map[int64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567"} {
		if got := formatCount(n); got != want {
			t.Errorf("formatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFullLibraryText(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario library run")
	}
	var b strings.Builder
	if err := run([]string{"-scenario", "split-brain-heal"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PASS") {
		t.Fatalf("report missing verdict:\n%s", b.String())
	}
}
