// Command gocast-scenarios runs the committed chaos-scenario library (or
// a scenario file) against a GoCast group and reports pass/fail invariant
// verdicts.
//
// Examples:
//
//	gocast-scenarios -list
//	gocast-scenarios -scenario split-brain-heal
//	gocast-scenarios -scenario all -substrate netsim
//	gocast-scenarios -scenario churn-storm -substrate live -admin-addr 127.0.0.1:9094
//	gocast-scenarios -scenario my-chaos.json -seed 7 -json
//	gocast-scenarios -experiments EXPERIMENTS.md
//
// On the netsim substrate a run is a pure function of (scenario, seed):
// the same invocation prints a byte-identical report every time. The live
// substrate executes the same schedule on wall clock, compressed by the
// scenario's live_scale.
//
// With -admin-addr the runner serves the usual observability surface
// while scenarios execute: /metrics carries the gocast_scenario_*
// counters and /statusz the live progress snapshot.
//
// -experiments re-runs the full library on netsim and rewrites the
// scenario-results table in the named markdown file between the
// "<!-- scenario-tables:begin -->" and "<!-- scenario-tables:end -->"
// markers (appending the section if the markers are absent).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gocast/internal/obs"
	"gocast/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gocast-scenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gocast-scenarios", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list the committed scenario library and exit")
		name        = fs.String("scenario", "all", "scenario name, path to a scenario .json file, or \"all\"")
		substrate   = fs.String("substrate", "netsim", "execution substrate: netsim (virtual time) or live (wall clock)")
		seed        = fs.Int64("seed", 0, "master seed override (0 uses the scenario's committed seed)")
		jsonOut     = fs.Bool("json", false, "emit reports as JSON instead of text")
		adminAddr   = fs.String("admin-addr", "", "HTTP admin listen address serving /metrics and /statusz during the run (empty disables)")
		experiments = fs.String("experiments", "", "re-run the library on netsim and rewrite the scenario tables in this markdown file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listLibrary(out)
	}
	if *experiments != "" {
		return regenExperiments(out, *experiments)
	}

	runs, err := selectScenarios(*name)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	m := scenario.NewMetrics(reg)
	var prog scenario.Progress
	if *adminAddr != "" {
		srv, err := obs.ServeAdmin(*adminAddr, obs.AdminOptions{
			Registry: reg,
			Status:   func() any { return prog.Snapshot() },
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "admin endpoint on http://%s/ (/metrics /statusz)\n", srv.Addr())
	}

	failed := 0
	for _, s := range runs {
		rep, err := scenario.Run(s, scenario.Options{
			Substrate: *substrate,
			Seed:      *seed,
			Metrics:   m,
			Progress:  &prog,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			fmt.Fprint(out, rep.Render())
		}
		if !rep.Passed {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed their invariants", failed, len(runs))
	}
	return nil
}

// selectScenarios resolves the -scenario argument: the whole library, one
// library entry by name, or a scenario file by path.
func selectScenarios(name string) ([]*scenario.Scenario, error) {
	if name == "all" {
		return scenario.Library(), nil
	}
	if s := scenario.Find(name); s != nil {
		return []*scenario.Scenario{s}, nil
	}
	if strings.HasSuffix(name, ".json") {
		s, err := scenario.Load(name)
		if err != nil {
			return nil, err
		}
		return []*scenario.Scenario{s}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (try -list, or pass a .json file)", name)
}

func listLibrary(out io.Writer) error {
	fmt.Fprintf(out, "%-20s %6s %7s %6s  %s\n", "SCENARIO", "NODES", "PHASES", "LIVE", "FAULTS")
	for _, s := range scenario.Library() {
		live := "-"
		if scenario.LiveCompatible(s.Name) {
			live = "yes"
		}
		kinds := s.FaultKinds()
		sort.Strings(kinds)
		fmt.Fprintf(out, "%-20s %6d %7d %6s  %s\n",
			s.Name, s.TotalNodes(), len(s.Phases), live, strings.Join(kinds, ","))
	}
	return nil
}

// Markers bounding the generated scenario table in EXPERIMENTS.md.
const (
	tableBegin = "<!-- scenario-tables:begin -->"
	tableEnd   = "<!-- scenario-tables:end -->"
)

// regenExperiments runs the full library on netsim and splices the
// resulting tables into the markdown file between the markers.
func regenExperiments(out io.Writer, path string) error {
	var b strings.Builder
	b.WriteString(tableBegin + "\n")
	b.WriteString("\n| scenario | nodes | phases | published | churn events | faults injected | violations | result |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	var details strings.Builder
	anyFailed := false
	for _, s := range scenario.Library() {
		fmt.Fprintf(out, "running %s on netsim...\n", s.Name)
		rep, err := scenario.Run(s, scenario.Options{Substrate: "netsim"})
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		verdict := "**pass**"
		if !rep.Passed {
			verdict = "**FAIL**"
			anyFailed = true
		}
		var faults int64
		for _, v := range rep.FaultCounts {
			faults += v
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %s | %d | %s |\n",
			s.Name, rep.Nodes, len(rep.Phases), rep.Published, rep.ChurnEvents,
			formatCount(faults), rep.ViolationsTotal, verdict)
		details.WriteString("\n```\n" + rep.Render() + "```\n")
	}
	b.WriteString("\nFull reports (netsim, committed seeds — byte-stable across runs):\n")
	b.WriteString(details.String())
	b.WriteString("\n" + tableEnd)

	if err := spliceSection(path, b.String()); err != nil {
		return err
	}
	fmt.Fprintf(out, "updated %s\n", path)
	if anyFailed {
		return fmt.Errorf("scenario(s) failed while regenerating %s", path)
	}
	return nil
}

// formatCount renders n with thousands separators, matching the style of
// the hand-written experiment tables.
func formatCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	return s
}

// spliceSection replaces the marker-bounded block in the file (or appends
// it) with the new content.
func spliceSection(path, section string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(data)
	if i := strings.Index(text, tableBegin); i >= 0 {
		j := strings.Index(text, tableEnd)
		if j < i {
			return fmt.Errorf("%s: malformed scenario-table markers", path)
		}
		text = text[:i] + section + text[j+len(tableEnd):]
	} else {
		if !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		text += "\n## Chaos scenarios (`gocast-scenarios`)\n\nGenerated by `gocast-scenarios -experiments EXPERIMENTS.md`.\n\n" + section + "\n"
	}
	return os.WriteFile(path, []byte(text), 0o644)
}
