package main

import "testing"

func TestParseContact(t *testing.T) {
	e, err := parseContact("3@10.0.0.1:7946")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 3 || e.Addr != "10.0.0.1:7946" {
		t.Fatalf("parsed %+v", e)
	}
}

func TestParseContactErrors(t *testing.T) {
	for _, in := range []string{"", "noat", "x@host:1", "@host:1"} {
		if _, err := parseContact(in); err == nil {
			t.Errorf("parseContact(%q) accepted malformed input", in)
		}
	}
}

func TestRunRejectsMissingMode(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Fatalf("run without -root or -join must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatalf("bad flag accepted")
	}
}
