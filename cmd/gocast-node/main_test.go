package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"gocast"
)

func TestParseContact(t *testing.T) {
	e, err := parseContact("3@10.0.0.1:7946")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 3 || e.Addr != "10.0.0.1:7946" {
		t.Fatalf("parsed %+v", e)
	}
}

func TestParseContactErrors(t *testing.T) {
	for _, in := range []string{"", "noat", "x@host:1", "@host:1"} {
		if _, err := parseContact(in); err == nil {
			t.Errorf("parseContact(%q) accepted malformed input", in)
		}
	}
}

func TestRunRejectsMissingMode(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Fatalf("run without -root or -join must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatalf("bad flag accepted")
	}
}

// TestAdminMetricsScrape pins the acceptance criterion: a node started
// with -admin-addr serves valid Prometheus metrics including the core
// latency histogram, gossip counters, sync counters, store gauges, and the
// transport redial counter (present at zero before any redial happened).
func TestAdminMetricsScrape(t *testing.T) {
	a, err := newApp([]string{
		"-id", "0", "-listen", "127.0.0.1:0", "-root", "-quiet",
		"-admin-addr", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()
	if a.admin == nil {
		t.Fatalf("admin endpoint not started")
	}
	var out strings.Builder
	a.handleLine("hello metrics", &out)
	if !strings.HasPrefix(out.String(), "sent ") {
		t.Fatalf("multicast via stdin line failed: %q", out.String())
	}

	resp, err := http.Get("http://" + a.admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != gocast.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, gocast.PrometheusContentType)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE gocast_core_tree_forward_latency_seconds histogram",
		`gocast_core_tree_forward_latency_seconds_bucket{le="+Inf"}`,
		"# TYPE gocast_core_gossips_sent_total counter",
		"gocast_sync_items_sent_total",
		"gocast_sync_items_recv_total",
		"# TYPE gocast_store_live_bytes gauge",
		"gocast_transport_tcp_redials_total 0",
		"gocast_core_injected_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz: a lone root node is healthy.
	resp2, err := http.Get("http://" + a.admin.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp2.StatusCode)
	}

	// /statusz carries the node's identity.
	resp3, err := http.Get("http://" + a.admin.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(sb), `"root": 0`) {
		t.Errorf("/statusz missing root field:\n%s", sb)
	}
}

// TestTraceCommand exercises the /trace stdin command end to end: the
// multicast above it must appear as a deliver event.
func TestTraceCommand(t *testing.T) {
	a, err := newApp([]string{"-id", "0", "-listen", "127.0.0.1:0", "-root", "-quiet"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()

	var out strings.Builder
	a.handleLine("traced payload", &out)
	out.Reset()
	a.handleLine("/trace", &out)
	if !strings.Contains(out.String(), "deliver") || !strings.Contains(out.String(), "events shown") {
		t.Errorf("/trace output missing deliver event:\n%s", out.String())
	}
	out.Reset()
	a.handleLine("/trace bogus", &out)
	if !strings.Contains(out.String(), "usage:") {
		t.Errorf("/trace with bad arg: %q", out.String())
	}
	out.Reset()
	a.handleLine("/nonsense", &out)
	if !strings.Contains(out.String(), "unknown command") {
		t.Errorf("unknown command not reported: %q", out.String())
	}
	out.Reset()
	a.handleLine("/status", &out)
	if !strings.Contains(out.String(), "degree=") || !strings.Contains(out.String(), "root=0") {
		t.Errorf("/status output: %q", out.String())
	}
	out.Reset()
	a.handleLine("/stats", &out)
	if !strings.Contains(out.String(), "injected=1") || !strings.Contains(out.String(), "live_messages=") {
		t.Errorf("/stats output: %q", out.String())
	}
}
