// Command gocast-node runs one live GoCast node over TCP/UDP. The first
// node of a group runs with -root; every other node points -join at any
// existing member. Lines read from stdin are multicast to the group;
// received messages are printed to stdout. Lines starting with "/" are
// commands (/status, /stats, /trace [N]) answered locally.
//
//	# terminal 1
//	gocast-node -id 0 -listen 127.0.0.1:7946 -root -admin-addr 127.0.0.1:9094
//	# terminal 2
//	gocast-node -id 1 -listen 127.0.0.1:7947 -join 0@127.0.0.1:7946
//
// With -admin-addr set, the node also serves an HTTP admin endpoint:
// Prometheus metrics on /metrics, a JSON status snapshot on /statusz,
// liveness on /healthz, recent protocol events on /tracez, and
// net/http/pprof under /debug/pprof/.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gocast"
)

func main() {
	a, err := newApp(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gocast-node:", err)
		os.Exit(1)
	}
	defer a.close()

	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			a.handleLine(sc.Text(), os.Stdout)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nleaving group")
}

// run builds the node but exits immediately (flag/bootstrap validation
// path, kept for tests; the interactive loop lives in main).
func run(args []string) error {
	a, err := newApp(args, io.Discard)
	if err != nil {
		return err
	}
	a.close()
	return nil
}

// app is one running gocast-node instance: the node, its transport, and
// the optional admin endpoint.
type app struct {
	node  *gocast.Node
	tr    *gocast.TCPTransport
	admin *gocast.AdminServer
	quiet bool
}

// newApp parses flags, starts the transport, node, and (optionally) the
// admin endpoint, and performs the -root/-join bootstrap. Startup banners
// go to w.
func newApp(args []string, w io.Writer) (*app, error) {
	fs := flag.NewFlagSet("gocast-node", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "this node's unique ID")
		listen    = fs.String("listen", "127.0.0.1:7946", "TCP/UDP listen address")
		join      = fs.String("join", "", "contact as id@host:port (empty for the first node)")
		root      = fs.Bool("root", false, "become the initial tree root")
		quiet     = fs.Bool("quiet", false, "do not echo received messages")
		inc       = fs.Uint("incarnation", 0, "incarnation number; a process rejoining under an ID it used before must pass a higher value than its previous life")
		adminAddr = fs.String("admin-addr", "", "HTTP admin listen address serving /metrics, /statusz, /healthz, /tracez, /debug/pprof (empty disables)")

		dialTimeout    = fs.Duration("dial-timeout", 0, "per-connection dial timeout (0 = default 5s)")
		writeTimeout   = fs.Duration("write-timeout", 0, "per-frame write deadline (0 = default 10s)")
		redialAttempts = fs.Int("redial-attempts", 0, "failed dials tolerated before a peer is reported down (0 = default 3, negative disables redial)")
		redialBackoff  = fs.Duration("redial-backoff", 0, "initial redial backoff, doubled per failure with jitter (0 = default 100ms)")
		redialMax      = fs.Duration("redial-backoff-max", 0, "redial backoff cap (0 = default 3s)")
		idleTimeout    = fs.Duration("idle-timeout", 0, "reap outbound connections idle this long (0 = default 5m, negative disables)")

		memBudget  = fs.Int64("mem-budget", 0, "overload memory budget in bytes over store plus queued frames; the node degrades near it and sheds publishes at it (0 = unlimited)")
		shedPolicy = fs.String("shed-policy", "", "overload shed policy: priority (default; Background sheds first) or off (no classing, legacy single-queue behavior)")

		storeMaxMsgs  = fs.Int("store-max-msgs", 0, "message store capacity in messages (0 = default 16384)")
		storeMaxBytes = fs.Int64("store-max-bytes", 0, "message store capacity in payload bytes (0 = default 64 MiB)")
		syncInterval  = fs.Duration("sync-interval", 0, "period of anti-entropy digest sync with neighbors (0 = default 30s, negative disables)")
		syncBatch     = fs.Int("sync-batch-bytes", 0, "payload byte budget per sync reply batch (0 = default 256 KiB)")

		coopcastThreshold = fs.Int("coopcast-threshold", 0, "payloads at or above this many bytes disseminate as erasure-coded symbols striped down the tree and repaired via gossip pulls (0 disables, the default)")
		fecRepair         = fs.Int("fec-repair", 0, "repair symbols added per coopcast message (0 = default 2)")

		traceCap    = fs.Int("trace-capacity", 0, "protocol trace ring size in events (0 = default 1024, negative disables)")
		traceSample = fs.Int("trace-sample", 0, "record every Nth protocol event in the trace ring (0/1 = all)")

		spanSample = fs.Int("span-sample-every", 0, "dissemination tracing: locally injected multicasts whose sequence number is a multiple of N carry a sampled hop context and leave dtrace spans on every node they touch (0 disables, 1 traces every message)")
		spanCap    = fs.Int("span-capacity", 0, "dissemination trace span ring size (0 = default 4096, negative disables recording)")

		mutexFraction = fs.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction: sample 1/N of mutex contention events so /debug/pprof/mutex returns data (0 disables, the runtime default)")
		blockRate     = fs.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate: sample blocking events of at least N ns so /debug/pprof/block returns data (0 disables, the runtime default)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch *shedPolicy {
	case "", "priority", "off":
	default:
		return nil, fmt.Errorf("-shed-policy %q: want priority or off", *shedPolicy)
	}

	cfg := gocast.DefaultConfig()
	cfg.StoreMaxMessages = *storeMaxMsgs
	cfg.StoreMaxBytes = *storeMaxBytes
	cfg.SyncInterval = *syncInterval
	cfg.SyncBatchBytes = *syncBatch
	cfg.CoopcastThreshold = *coopcastThreshold
	cfg.TraceSampleEvery = *spanSample
	if *fecRepair > 0 {
		cfg.FECRepair = *fecRepair
	}

	// Contention profiling is off by default (it costs a sampled global
	// counter per event); these flags turn it on so the pprof mutex and
	// block endpoints under -admin-addr return real samples.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	tr, err := gocast.NewTCPTransportWithOptions(gocast.NodeID(*id), *listen, gocast.TCPOptions{
		DialTimeout:      *dialTimeout,
		WriteTimeout:     *writeTimeout,
		RedialAttempts:   *redialAttempts,
		RedialBackoff:    *redialBackoff,
		RedialBackoffMax: *redialMax,
		IdleTimeout:      *idleTimeout,
		ShedPolicy:       *shedPolicy,
	})
	if err != nil {
		return nil, err
	}
	a := &app{tr: tr, quiet: *quiet}
	a.node = gocast.NewNode(gocast.NodeOptions{
		ID:            gocast.NodeID(*id),
		Config:        cfg,
		Transport:     tr,
		Seed:          time.Now().UnixNano(),
		Incarnation:   uint32(*inc),
		TraceCapacity: *traceCap,
		TraceSample:   *traceSample,
		SpanCapacity:  *spanCap,
		Overload: gocast.OverloadOptions{
			MemBudget:  *memBudget,
			ShedPolicy: *shedPolicy,
		},
		OnDeliver: func(mid gocast.MessageID, payload []byte, age time.Duration) {
			if !*quiet {
				fmt.Printf("[%s age=%v] %s\n", mid, age.Round(time.Millisecond), payload)
			}
		},
	})
	fmt.Fprintf(w, "node %d listening on %s\n", *id, tr.Addr())

	if *adminAddr != "" {
		a.admin, err = gocast.ServeAdmin(*adminAddr, gocast.AdminOptions{
			Registry: a.node.Registry(),
			Trace:    a.node.Trace(),
			Spans:    a.node.Spans,
			Status:   func() any { return a.node.Status() },
			Health:   a.node.Health,
		})
		if err != nil {
			a.node.Close()
			return nil, err
		}
		fmt.Fprintf(w, "admin endpoint on http://%s/ (/metrics /statusz /healthz /tracez /spans /debug/pprof)\n", a.admin.Addr())
	}

	switch {
	case *root:
		a.node.BecomeRoot()
		a.node.SetLandmarks([]gocast.Entry{a.node.Entry()})
		fmt.Fprintln(w, "acting as initial tree root")
	case *join != "":
		contact, err := parseContact(*join)
		if err != nil {
			a.close()
			return nil, err
		}
		a.node.Join(contact)
		fmt.Fprintf(w, "joining via node %d at %s\n", contact.ID, contact.Addr)
	default:
		a.close()
		return nil, fmt.Errorf("need -root or -join")
	}
	return a, nil
}

// close stops the admin endpoint and leaves the group.
func (a *app) close() {
	if a.admin != nil {
		_ = a.admin.Close()
	}
	a.node.Close()
}

// handleLine processes one stdin line: a /command answered locally, or a
// payload multicast to the group.
func (a *app) handleLine(line string, w io.Writer) {
	line = strings.TrimSpace(line)
	if line == "" {
		return
	}
	switch {
	case line == "/status":
		st := a.node.Status()
		fmt.Fprintf(w, "degree=%d members=%d root=%d parent=%d store=%d msgs/%d bytes overload=%s\n",
			st.Degree, st.Members, st.Root, st.Parent, st.StoreMessages, st.StoreBytes, st.Overload)
	case line == "/stats":
		s := a.node.Stats()
		fmt.Fprintf(w, "delivered=%d injected=%d duplicates=%d pulls=%d peer_downs=%d\n",
			s.Delivered, s.Injected, s.Duplicates, s.PullsSent, s.PeerDowns)
		for _, group := range []map[string]int64{a.node.ChurnStats(), a.node.SyncStats(), a.node.StoreStats(), a.node.TransportStats()} {
			names := make([]string, 0, len(group))
			for name := range group {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(w, "%s=%d\n", name, group[name])
			}
		}
	case line == "/trace" || strings.HasPrefix(line, "/trace "):
		tb := a.node.Trace()
		if tb == nil {
			fmt.Fprintln(w, "tracing disabled (-trace-capacity < 0)")
			return
		}
		n := 20
		if rest := strings.TrimSpace(strings.TrimPrefix(line, "/trace")); rest != "" {
			v, err := strconv.Atoi(rest)
			if err != nil || v <= 0 {
				fmt.Fprintf(w, "usage: /trace [N]\n")
				return
			}
			n = v
		}
		events := tb.Snapshot()
		if len(events) > n {
			events = events[len(events)-n:]
		}
		for _, e := range events {
			fmt.Fprintln(w, e)
		}
		fmt.Fprintf(w, "-- %d events shown (%d evicted)\n", len(events), tb.Dropped())
	case strings.HasPrefix(line, "/"):
		fmt.Fprintf(w, "unknown command %q (have /status /stats /trace)\n", strings.Fields(line)[0])
	default:
		mid := a.node.Multicast([]byte(line))
		fmt.Fprintf(w, "sent %s\n", mid)
	}
}

func parseContact(s string) (gocast.Entry, error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return gocast.Entry{}, fmt.Errorf("contact %q: want id@host:port", s)
	}
	id, err := strconv.Atoi(s[:at])
	if err != nil {
		return gocast.Entry{}, fmt.Errorf("contact %q: bad id: %v", s, err)
	}
	return gocast.Entry{ID: gocast.NodeID(id), Addr: s[at+1:]}, nil
}
