// Command gocast-node runs one live GoCast node over TCP/UDP. The first
// node of a group runs with -root; every other node points -join at any
// existing member. Lines read from stdin are multicast to the group;
// received messages are printed to stdout.
//
//	# terminal 1
//	gocast-node -id 0 -listen 127.0.0.1:7946 -root
//	# terminal 2
//	gocast-node -id 1 -listen 127.0.0.1:7947 -join 0@127.0.0.1:7946
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gocast"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocast-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocast-node", flag.ContinueOnError)
	var (
		id     = fs.Int("id", 0, "this node's unique ID")
		listen = fs.String("listen", "127.0.0.1:7946", "TCP/UDP listen address")
		join   = fs.String("join", "", "contact as id@host:port (empty for the first node)")
		root   = fs.Bool("root", false, "become the initial tree root")
		quiet  = fs.Bool("quiet", false, "do not echo received messages")
		inc    = fs.Uint("incarnation", 0, "incarnation number; a process rejoining under an ID it used before must pass a higher value than its previous life")

		dialTimeout    = fs.Duration("dial-timeout", 0, "per-connection dial timeout (0 = default 5s)")
		writeTimeout   = fs.Duration("write-timeout", 0, "per-frame write deadline (0 = default 10s)")
		redialAttempts = fs.Int("redial-attempts", 0, "failed dials tolerated before a peer is reported down (0 = default 3, negative disables redial)")
		redialBackoff  = fs.Duration("redial-backoff", 0, "initial redial backoff, doubled per failure with jitter (0 = default 100ms)")
		redialMax      = fs.Duration("redial-backoff-max", 0, "redial backoff cap (0 = default 3s)")
		idleTimeout    = fs.Duration("idle-timeout", 0, "reap outbound connections idle this long (0 = default 5m, negative disables)")

		storeMaxMsgs  = fs.Int("store-max-msgs", 0, "message store capacity in messages (0 = default 16384)")
		storeMaxBytes = fs.Int64("store-max-bytes", 0, "message store capacity in payload bytes (0 = default 64 MiB)")
		syncInterval  = fs.Duration("sync-interval", 0, "period of anti-entropy digest sync with neighbors (0 = default 30s, negative disables)")
		syncBatch     = fs.Int("sync-batch-bytes", 0, "payload byte budget per sync reply batch (0 = default 256 KiB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gocast.DefaultConfig()
	cfg.StoreMaxMessages = *storeMaxMsgs
	cfg.StoreMaxBytes = *storeMaxBytes
	cfg.SyncInterval = *syncInterval
	cfg.SyncBatchBytes = *syncBatch

	tr, err := gocast.NewTCPTransportWithOptions(gocast.NodeID(*id), *listen, gocast.TCPOptions{
		DialTimeout:      *dialTimeout,
		WriteTimeout:     *writeTimeout,
		RedialAttempts:   *redialAttempts,
		RedialBackoff:    *redialBackoff,
		RedialBackoffMax: *redialMax,
		IdleTimeout:      *idleTimeout,
	})
	if err != nil {
		return err
	}
	node := gocast.NewNode(gocast.NodeOptions{
		ID:          gocast.NodeID(*id),
		Config:      cfg,
		Transport:   tr,
		Seed:        time.Now().UnixNano(),
		Incarnation: uint32(*inc),
		OnDeliver: func(mid gocast.MessageID, payload []byte, age time.Duration) {
			if !*quiet {
				fmt.Printf("[%s age=%v] %s\n", mid, age.Round(time.Millisecond), payload)
			}
		},
	})
	defer node.Close()
	fmt.Printf("node %d listening on %s\n", *id, tr.Addr())

	switch {
	case *root:
		node.BecomeRoot()
		node.SetLandmarks([]gocast.Entry{node.Entry()})
		fmt.Println("acting as initial tree root")
	case *join != "":
		contact, err := parseContact(*join)
		if err != nil {
			return err
		}
		node.Join(contact)
		fmt.Printf("joining via node %d at %s\n", contact.ID, contact.Addr)
	default:
		return fmt.Errorf("need -root or -join")
	}

	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if line == "/status" {
				fmt.Printf("degree=%d root=%d parent=%d\n",
					node.Degree(), node.Root(), node.Parent())
				continue
			}
			if line == "/stats" {
				s := node.Stats()
				fmt.Printf("delivered=%d injected=%d duplicates=%d pulls=%d peer_downs=%d\n",
					s.Delivered, s.Injected, s.Duplicates, s.PullsSent, s.PeerDowns)
				for _, group := range []map[string]int64{node.ChurnStats(), node.SyncStats(), node.StoreStats(), node.TransportStats()} {
					names := make([]string, 0, len(group))
					for name := range group {
						names = append(names, name)
					}
					sort.Strings(names)
					for _, name := range names {
						fmt.Printf("%s=%d\n", name, group[name])
					}
				}
				continue
			}
			mid := node.Multicast([]byte(line))
			fmt.Printf("sent %s\n", mid)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nleaving group")
	return nil
}

func parseContact(s string) (gocast.Entry, error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return gocast.Entry{}, fmt.Errorf("contact %q: want id@host:port", s)
	}
	id, err := strconv.Atoi(s[:at])
	if err != nil {
		return gocast.Entry{}, fmt.Errorf("contact %q: bad id: %v", s, err)
	}
	return gocast.Entry{ID: gocast.NodeID(id), Addr: s[at+1:]}, nil
}
