package main

import "testing"

func TestRunTinySimulation(t *testing.T) {
	err := run([]string{
		"-nodes", "48",
		"-warmup", "30s",
		"-messages", "10",
		"-drain", "10s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFailures(t *testing.T) {
	err := run([]string{
		"-nodes", "48",
		"-warmup", "30s",
		"-messages", "10",
		"-drain", "20s",
		"-fail", "0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatalf("bad flag accepted")
	}
}
