// Command gocast-sim runs a single configurable GoCast simulation and
// prints delivery statistics — a playground for exploring the protocol
// outside the fixed paper experiments.
//
// Example:
//
//	gocast-sim -nodes 1024 -warmup 500s -messages 1000 -fail 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gocast/internal/core"
	"gocast/internal/netsim"
	"gocast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocast-sim", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 256, "system size")
		seed     = fs.Int64("seed", 1, "random seed")
		warmup   = fs.Duration("warmup", 150*time.Second, "adaptation time before messages")
		messages = fs.Int("messages", 100, "number of multicasts")
		rate     = fs.Float64("rate", 100, "multicasts per second")
		drain    = fs.Duration("drain", 30*time.Second, "time to wait for stragglers")
		fail     = fs.Float64("fail", 0, "fraction of nodes killed before messages (no repair)")
		crand    = fs.Int("crand", 1, "target random degree")
		cnear    = fs.Int("cnear", 5, "target nearby degree")
		tree     = fs.Bool("tree", true, "enable the embedded multicast tree")
		pullf    = fs.Duration("pulldelay", 0, "pull delay f")
		traceN   = fs.Int("trace", 0, "dump the last N protocol events after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.CRand, cfg.CNear, cfg.EnableTree, cfg.PullDelay = *crand, *cnear, *tree, *pullf
	var tracer *trace.Buffer
	if *traceN > 0 {
		tracer = trace.NewBuffer(*traceN)
	}
	c := netsim.New(netsim.Options{Nodes: *nodes, Seed: *seed, Config: cfg, Tracer: tracer})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom((cfg.TargetDegree() + 1) / 2)
	c.Start(0)

	start := time.Now()
	c.Run(*warmup)
	fmt.Printf("after %v adaptation (%v wall):\n", *warmup, time.Since(start).Round(time.Millisecond))
	h := c.DegreeHistogram()
	fmt.Printf("  degrees: mean %.2f, %0.f%% at %d, %0.f%% at %d\n",
		h.Mean(), h.Fraction(cfg.TargetDegree())*100, cfg.TargetDegree(),
		h.Fraction(cfg.TargetDegree()+1)*100, cfg.TargetDegree()+1)
	fmt.Printf("  overlay links: avg %v one-way; tree links: avg %v; connected: %.3f\n",
		c.AvgOverlayLinkLatency(), c.AvgTreeLinkLatency(), c.LargestComponentRatio())

	if *fail > 0 {
		c.SetMaintenance(false)
		c.SetDetection(false)
		killed := c.KillFraction(*fail)
		fmt.Printf("killed %d nodes (no repair); overlay q=%.3f\n", len(killed), c.LargestComponentRatio())
	}

	c.InjectStream(*messages, *rate, nil)
	c.Run(time.Duration(float64(*messages) / *rate * float64(time.Second)) + *drain)

	rec := c.Delays()
	cdf := rec.CDF()
	fmt.Printf("delivery over %d messages x %d live nodes:\n", *messages, c.AliveCount())
	fmt.Printf("  ratio %.4f  p50 %v  p90 %v  p99 %v  max %v\n",
		rec.DeliveryRatio(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Max())
	cnt := c.SumCounters()
	fmt.Printf("  gossips %d, pulls %d served %d, duplicates %d (%.4f/pair)\n",
		cnt.GossipsSent, cnt.PullsSent, cnt.PullsServed, cnt.Duplicates,
		float64(cnt.Duplicates)/(float64(*messages)*float64(c.AliveCount())))
	if tracer != nil {
		fmt.Printf("trace summary: %s\n", tracer.Summary())
		return tracer.Dump(os.Stdout, trace.Filter{Node: -1})
	}
	return nil
}
