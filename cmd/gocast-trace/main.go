// Command gocast-trace reconstructs the dissemination path of sampled
// multicasts across a running GoCast group.
//
// It fetches every node's span buffer from the admin endpoints (GET
// /spans, see gocast-node -admin-addr), stitches the spans into
// per-message dissemination trees, and renders them as ASCII trees with
// per-delivery latency attribution — which hops were tree pushes, which
// had to be recovered by gossip pull or anti-entropy sync, and how long
// each path took.
//
// Usage:
//
//	gocast-trace [flags] admin-addr [admin-addr...]
//
//	gocast-trace 127.0.0.1:8001 127.0.0.1:8002 127.0.0.1:8003
//	gocast-trace -msg 1/12 127.0.0.1:8001 127.0.0.1:8002
//	gocast-trace -json 127.0.0.1:8001 > traces.json
//	gocast-trace -chrome trace.json 127.0.0.1:8001 127.0.0.1:8002
//	gocast-trace -in spans.json -msg 0/3
//
// Tracing must be on: start nodes with -span-sample-every N (or set
// Config.TraceSampleEvery) so 1-in-N locally injected multicasts carry a
// sampled hop context and leave spans behind.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gocast/internal/dtrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocast-trace:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("gocast-trace", flag.ExitOnError)
	var (
		msg     = fs.String("msg", "", "render only message src/seq (e.g. 1/12)")
		asJSON  = fs.Bool("json", false, "emit stitched traces as JSON instead of ASCII trees")
		chrome  = fs.String("chrome", "", "also write Chrome trace-event JSON to this file (chrome://tracing, ui.perfetto.dev)")
		in      = fs.String("in", "", "read a span JSON array from this file ('-' for stdin) instead of, or in addition to, fetching endpoints")
		timeout = fs.Duration("timeout", 5*time.Second, "per-endpoint fetch timeout")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: gocast-trace [flags] admin-addr [admin-addr...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return err
	}
	addrs := fs.Args()
	if len(addrs) == 0 && *in == "" {
		fs.Usage()
		return fmt.Errorf("no admin addresses given (and no -in file)")
	}

	var spans []dtrace.Span
	if *in != "" {
		got, err := readSpans(*in)
		if err != nil {
			return err
		}
		spans = append(spans, got...)
	}
	if len(addrs) > 0 {
		got, err := dtrace.Collect(addrs, *timeout)
		spans = append(spans, got...)
		if err != nil {
			// Partial collections still stitch; warn and carry on.
			fmt.Fprintln(os.Stderr, "gocast-trace: some endpoints failed:", err)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans collected — is sampling on? (gocast-node -span-sample-every N)")
	}

	traces := dtrace.Stitch(spans)
	if *msg != "" {
		src, seq, err := dtrace.ParseMsg(*msg)
		if err != nil {
			return err
		}
		t := dtrace.Find(traces, src, seq)
		if t == nil {
			return fmt.Errorf("no spans for message %s (%d traced messages collected)", *msg, len(traces))
		}
		traces = []*dtrace.MessageTrace{t}
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := dtrace.WriteChromeTrace(f, traces, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gocast-trace: wrote Chrome trace-event file %s\n", *chrome)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(traces)
	}
	for i, t := range traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Render())
	}
	return nil
}

// readSpans loads a span JSON array — the /spans response body, or the
// concatenation several of them produce when saved per node.
func readSpans(path string) ([]dtrace.Span, error) {
	var r *os.File
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	var spans []dtrace.Span
	for dec.More() {
		var chunk []dtrace.Span
		if err := dec.Decode(&chunk); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, chunk...)
	}
	return spans, nil
}
