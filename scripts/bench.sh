#!/bin/sh
# Runs the root-package benchmarks (bench_test.go) and records each
# benchmark's name, ns/op, and allocs/op in BENCH_<date>.json at the
# repo root, so the performance trajectory is tracked PR over PR.
#
# Usage: scripts/bench.sh [bench-regexp] [benchtime]
#   scripts/bench.sh                 # all benchmarks, one iteration each
#   scripts/bench.sh 'Obs' 100000x   # just the registry hot paths
set -eu

cd "$(dirname "$0")/.."
pattern="${1:-.}"
benchtime="${2:-1x}"
out="BENCH_$(date +%F).json"

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -timeout 0 . |
	tee /dev/stderr |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = ""; allocs = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i - 1)
				if ($i == "allocs/op") allocs = $(i - 1)
			}
			if (ns == "") next
			if (allocs == "") allocs = "null"
			if (n++) printf ",\n"
			printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
		}
		BEGIN { printf "[\n" }
		END   { printf "\n]\n" }
	' >"$out"

echo "wrote $out" >&2
