#!/bin/sh
# Runs the root-package benchmarks (bench_test.go) and records each
# benchmark's name, ns/op, and allocs/op in BENCH_<date>.json at the
# repo root, so the performance trajectory is tracked PR over PR.
#
# Usage: scripts/bench.sh [-compare] [bench-regexp] [benchtime]
#   scripts/bench.sh                 # all benchmarks, one iteration each
#   scripts/bench.sh 'Obs' 100000x   # just the registry hot paths
#   scripts/bench.sh -compare        # also diff against the latest
#                                    # committed BENCH_*.json (read from
#                                    # git, so overwriting the worktree
#                                    # copy cannot skew the baseline)
#
# Note -benchtime=1x (the default) amortizes nothing: one-time setup in a
# benchmark body is billed to the single op. Benchmarks with non-trivial
# setup must ResetTimer, or their 1x numbers record the harness, not the
# hot path (this is exactly what the 2026-08-06 BenchmarkObsCounterInc
# entry shows). For stable microbenchmark numbers pass an explicit
# benchtime.
set -eu

cd "$(dirname "$0")/.."

compare=0
if [ "${1:-}" = "-compare" ]; then
	compare=1
	shift
fi
pattern="${1:-.}"
benchtime="${2:-1x}"
out="BENCH_$(date +%F).json"

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -timeout 0 . |
	tee /dev/stderr |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = ""; allocs = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i - 1)
				if ($i == "allocs/op") allocs = $(i - 1)
			}
			if (ns == "") next
			if (allocs == "") allocs = "null"
			if (n++) printf ",\n"
			printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
		}
		BEGIN { printf "[\n" }
		END   { printf "\n]\n" }
	' >"$out"

echo "wrote $out" >&2

if [ "$compare" = 1 ]; then
	base="$(git ls-files 'BENCH_*.json' | sort | tail -1)"
	if [ -z "$base" ]; then
		echo "bench.sh: no committed BENCH_*.json to compare against" >&2
		exit 1
	fi
	echo >&2
	echo "# delta vs committed $base (negative = improvement)" >&2
	git show "HEAD:$base" | awk -v freshfile="$out" '
		function field(line, key,    rest) {
			if (!match(line, "\"" key "\": [0-9.]+")) return ""
			rest = substr(line, RSTART, RLENGTH)
			sub(/.*: /, "", rest)
			return rest
		}
		function bname(line,    rest) {
			if (!match(line, /"name": "[^"]*"/)) return ""
			rest = substr(line, RSTART, RLENGTH)
			sub(/"name": "/, "", rest)
			sub(/"$/, "", rest)
			return rest
		}
		function pct(old, new) {
			if (old == "" || new == "" || old + 0 == 0) return "    n/a"
			return sprintf("%+6.1f%%", 100 * (new - old) / old)
		}
		BEGIN {
			while ((getline line < freshfile) > 0) {
				n = bname(line)
				if (n == "") continue
				fns[n] = field(line, "ns_per_op")
				fal[n] = field(line, "allocs_per_op")
				if (!(n in seen)) { order[++cnt] = n; seen[n] = 1 }
			}
			close(freshfile)
		}
		{
			n = bname($0)
			if (n == "") next
			bns[n] = field($0, "ns_per_op")
			bal[n] = field($0, "allocs_per_op")
			if (!(n in seen)) { order[++cnt] = n; seen[n] = 1 }
		}
		END {
			printf "%-34s %15s %15s %8s %12s %12s %8s\n",
				"benchmark", "old-ns/op", "new-ns/op", "d-ns", "old-allocs", "new-allocs", "d-allocs"
			for (i = 1; i <= cnt; i++) {
				n = order[i]
				if (!(n in bns)) { printf "%-34s %s\n", n, "(new benchmark)"; continue }
				if (!(n in fns)) { printf "%-34s %s\n", n, "(not in fresh run)"; continue }
				printf "%-34s %15.0f %15.0f %8s %12s %12s %8s\n",
					n, bns[n], fns[n], pct(bns[n], fns[n]),
					bal[n], fal[n], pct(bal[n], fal[n])
			}
		}
	' >&2
fi
